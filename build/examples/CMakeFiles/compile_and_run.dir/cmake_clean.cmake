file(REMOVE_RECURSE
  "CMakeFiles/compile_and_run.dir/compile_and_run.cpp.o"
  "CMakeFiles/compile_and_run.dir/compile_and_run.cpp.o.d"
  "compile_and_run"
  "compile_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
