# Empty compiler generated dependencies file for compile_and_run.
# This may be replaced when dependencies are built.
