file(REMOVE_RECURSE
  "CMakeFiles/scheduler_comparison.dir/scheduler_comparison.cpp.o"
  "CMakeFiles/scheduler_comparison.dir/scheduler_comparison.cpp.o.d"
  "scheduler_comparison"
  "scheduler_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
