# Empty compiler generated dependencies file for scheduler_comparison.
# This may be replaced when dependencies are built.
