file(REMOVE_RECURSE
  "CMakeFiles/lsmsc.dir/lsmsc.cpp.o"
  "CMakeFiles/lsmsc.dir/lsmsc.cpp.o.d"
  "lsmsc"
  "lsmsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
