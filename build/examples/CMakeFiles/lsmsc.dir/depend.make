# Empty dependencies file for lsmsc.
# This may be replaced when dependencies are built.
