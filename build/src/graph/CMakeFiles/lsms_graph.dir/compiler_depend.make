# Empty compiler generated dependencies file for lsms_graph.
# This may be replaced when dependencies are built.
