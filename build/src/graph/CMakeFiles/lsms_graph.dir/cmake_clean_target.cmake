file(REMOVE_RECURSE
  "liblsms_graph.a"
)
