file(REMOVE_RECURSE
  "CMakeFiles/lsms_graph.dir/Circuits.cpp.o"
  "CMakeFiles/lsms_graph.dir/Circuits.cpp.o.d"
  "CMakeFiles/lsms_graph.dir/MinDist.cpp.o"
  "CMakeFiles/lsms_graph.dir/MinDist.cpp.o.d"
  "CMakeFiles/lsms_graph.dir/MinRatioCycle.cpp.o"
  "CMakeFiles/lsms_graph.dir/MinRatioCycle.cpp.o.d"
  "CMakeFiles/lsms_graph.dir/Scc.cpp.o"
  "CMakeFiles/lsms_graph.dir/Scc.cpp.o.d"
  "liblsms_graph.a"
  "liblsms_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
