
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/Circuits.cpp" "src/graph/CMakeFiles/lsms_graph.dir/Circuits.cpp.o" "gcc" "src/graph/CMakeFiles/lsms_graph.dir/Circuits.cpp.o.d"
  "/root/repo/src/graph/MinDist.cpp" "src/graph/CMakeFiles/lsms_graph.dir/MinDist.cpp.o" "gcc" "src/graph/CMakeFiles/lsms_graph.dir/MinDist.cpp.o.d"
  "/root/repo/src/graph/MinRatioCycle.cpp" "src/graph/CMakeFiles/lsms_graph.dir/MinRatioCycle.cpp.o" "gcc" "src/graph/CMakeFiles/lsms_graph.dir/MinRatioCycle.cpp.o.d"
  "/root/repo/src/graph/Scc.cpp" "src/graph/CMakeFiles/lsms_graph.dir/Scc.cpp.o" "gcc" "src/graph/CMakeFiles/lsms_graph.dir/Scc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lsms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lsms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lsms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
