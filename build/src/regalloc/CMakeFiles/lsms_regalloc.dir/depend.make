# Empty dependencies file for lsms_regalloc.
# This may be replaced when dependencies are built.
