file(REMOVE_RECURSE
  "liblsms_regalloc.a"
)
