file(REMOVE_RECURSE
  "CMakeFiles/lsms_regalloc.dir/RotatingAllocator.cpp.o"
  "CMakeFiles/lsms_regalloc.dir/RotatingAllocator.cpp.o.d"
  "liblsms_regalloc.a"
  "liblsms_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
