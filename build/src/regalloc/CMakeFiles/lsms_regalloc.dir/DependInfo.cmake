
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regalloc/RotatingAllocator.cpp" "src/regalloc/CMakeFiles/lsms_regalloc.dir/RotatingAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/lsms_regalloc.dir/RotatingAllocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bounds/CMakeFiles/lsms_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lsms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lsms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lsms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lsms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
