file(REMOVE_RECURSE
  "liblsms_bounds.a"
)
