file(REMOVE_RECURSE
  "CMakeFiles/lsms_bounds.dir/Bounds.cpp.o"
  "CMakeFiles/lsms_bounds.dir/Bounds.cpp.o.d"
  "CMakeFiles/lsms_bounds.dir/Lifetimes.cpp.o"
  "CMakeFiles/lsms_bounds.dir/Lifetimes.cpp.o.d"
  "liblsms_bounds.a"
  "liblsms_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
