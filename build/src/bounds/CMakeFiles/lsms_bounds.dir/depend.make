# Empty dependencies file for lsms_bounds.
# This may be replaced when dependencies are built.
