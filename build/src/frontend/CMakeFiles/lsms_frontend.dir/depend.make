# Empty dependencies file for lsms_frontend.
# This may be replaced when dependencies are built.
