file(REMOVE_RECURSE
  "liblsms_frontend.a"
)
