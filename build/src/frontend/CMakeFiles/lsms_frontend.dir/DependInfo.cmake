
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/Lexer.cpp" "src/frontend/CMakeFiles/lsms_frontend.dir/Lexer.cpp.o" "gcc" "src/frontend/CMakeFiles/lsms_frontend.dir/Lexer.cpp.o.d"
  "/root/repo/src/frontend/LoopCompiler.cpp" "src/frontend/CMakeFiles/lsms_frontend.dir/LoopCompiler.cpp.o" "gcc" "src/frontend/CMakeFiles/lsms_frontend.dir/LoopCompiler.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/frontend/CMakeFiles/lsms_frontend.dir/Parser.cpp.o" "gcc" "src/frontend/CMakeFiles/lsms_frontend.dir/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lsms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lsms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lsms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
