file(REMOVE_RECURSE
  "CMakeFiles/lsms_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/lsms_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/lsms_frontend.dir/LoopCompiler.cpp.o"
  "CMakeFiles/lsms_frontend.dir/LoopCompiler.cpp.o.d"
  "CMakeFiles/lsms_frontend.dir/Parser.cpp.o"
  "CMakeFiles/lsms_frontend.dir/Parser.cpp.o.d"
  "liblsms_frontend.a"
  "liblsms_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
