# Empty dependencies file for lsms_codegen.
# This may be replaced when dependencies are built.
