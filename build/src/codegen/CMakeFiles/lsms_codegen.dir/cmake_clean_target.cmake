file(REMOVE_RECURSE
  "liblsms_codegen.a"
)
