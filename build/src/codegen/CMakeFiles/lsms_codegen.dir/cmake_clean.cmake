file(REMOVE_RECURSE
  "CMakeFiles/lsms_codegen.dir/KernelCodeGen.cpp.o"
  "CMakeFiles/lsms_codegen.dir/KernelCodeGen.cpp.o.d"
  "CMakeFiles/lsms_codegen.dir/ModuloVariableExpansion.cpp.o"
  "CMakeFiles/lsms_codegen.dir/ModuloVariableExpansion.cpp.o.d"
  "CMakeFiles/lsms_codegen.dir/Schema.cpp.o"
  "CMakeFiles/lsms_codegen.dir/Schema.cpp.o.d"
  "liblsms_codegen.a"
  "liblsms_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
