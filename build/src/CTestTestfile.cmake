# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("machine")
subdirs("ir")
subdirs("graph")
subdirs("bounds")
subdirs("core")
subdirs("frontend")
subdirs("regalloc")
subdirs("codegen")
subdirs("vliwsim")
subdirs("workloads")
