# Empty dependencies file for lsms_support.
# This may be replaced when dependencies are built.
