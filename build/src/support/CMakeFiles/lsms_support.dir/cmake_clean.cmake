file(REMOVE_RECURSE
  "CMakeFiles/lsms_support.dir/Histogram.cpp.o"
  "CMakeFiles/lsms_support.dir/Histogram.cpp.o.d"
  "CMakeFiles/lsms_support.dir/Statistics.cpp.o"
  "CMakeFiles/lsms_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/lsms_support.dir/Table.cpp.o"
  "CMakeFiles/lsms_support.dir/Table.cpp.o.d"
  "liblsms_support.a"
  "liblsms_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
