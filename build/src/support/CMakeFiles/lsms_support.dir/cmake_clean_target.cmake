file(REMOVE_RECURSE
  "liblsms_support.a"
)
