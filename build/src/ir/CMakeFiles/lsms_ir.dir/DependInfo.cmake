
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/DepGraph.cpp" "src/ir/CMakeFiles/lsms_ir.dir/DepGraph.cpp.o" "gcc" "src/ir/CMakeFiles/lsms_ir.dir/DepGraph.cpp.o.d"
  "/root/repo/src/ir/GraphViz.cpp" "src/ir/CMakeFiles/lsms_ir.dir/GraphViz.cpp.o" "gcc" "src/ir/CMakeFiles/lsms_ir.dir/GraphViz.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/ir/CMakeFiles/lsms_ir.dir/IRBuilder.cpp.o" "gcc" "src/ir/CMakeFiles/lsms_ir.dir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/LoopBody.cpp" "src/ir/CMakeFiles/lsms_ir.dir/LoopBody.cpp.o" "gcc" "src/ir/CMakeFiles/lsms_ir.dir/LoopBody.cpp.o.d"
  "/root/repo/src/ir/Unroll.cpp" "src/ir/CMakeFiles/lsms_ir.dir/Unroll.cpp.o" "gcc" "src/ir/CMakeFiles/lsms_ir.dir/Unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/lsms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lsms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
