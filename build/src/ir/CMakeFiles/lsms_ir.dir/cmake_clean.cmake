file(REMOVE_RECURSE
  "CMakeFiles/lsms_ir.dir/DepGraph.cpp.o"
  "CMakeFiles/lsms_ir.dir/DepGraph.cpp.o.d"
  "CMakeFiles/lsms_ir.dir/GraphViz.cpp.o"
  "CMakeFiles/lsms_ir.dir/GraphViz.cpp.o.d"
  "CMakeFiles/lsms_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/lsms_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/lsms_ir.dir/LoopBody.cpp.o"
  "CMakeFiles/lsms_ir.dir/LoopBody.cpp.o.d"
  "CMakeFiles/lsms_ir.dir/Unroll.cpp.o"
  "CMakeFiles/lsms_ir.dir/Unroll.cpp.o.d"
  "liblsms_ir.a"
  "liblsms_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
