# Empty dependencies file for lsms_ir.
# This may be replaced when dependencies are built.
