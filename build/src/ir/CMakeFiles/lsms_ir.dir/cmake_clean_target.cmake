file(REMOVE_RECURSE
  "liblsms_ir.a"
)
