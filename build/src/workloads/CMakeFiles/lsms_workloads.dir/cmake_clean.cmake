file(REMOVE_RECURSE
  "CMakeFiles/lsms_workloads.dir/Kernels.cpp.o"
  "CMakeFiles/lsms_workloads.dir/Kernels.cpp.o.d"
  "CMakeFiles/lsms_workloads.dir/RandomLoop.cpp.o"
  "CMakeFiles/lsms_workloads.dir/RandomLoop.cpp.o.d"
  "CMakeFiles/lsms_workloads.dir/Suite.cpp.o"
  "CMakeFiles/lsms_workloads.dir/Suite.cpp.o.d"
  "liblsms_workloads.a"
  "liblsms_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
