file(REMOVE_RECURSE
  "liblsms_workloads.a"
)
