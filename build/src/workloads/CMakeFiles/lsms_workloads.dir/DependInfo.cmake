
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Kernels.cpp" "src/workloads/CMakeFiles/lsms_workloads.dir/Kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/lsms_workloads.dir/Kernels.cpp.o.d"
  "/root/repo/src/workloads/RandomLoop.cpp" "src/workloads/CMakeFiles/lsms_workloads.dir/RandomLoop.cpp.o" "gcc" "src/workloads/CMakeFiles/lsms_workloads.dir/RandomLoop.cpp.o.d"
  "/root/repo/src/workloads/Suite.cpp" "src/workloads/CMakeFiles/lsms_workloads.dir/Suite.cpp.o" "gcc" "src/workloads/CMakeFiles/lsms_workloads.dir/Suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/lsms_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lsms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lsms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lsms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
