# Empty compiler generated dependencies file for lsms_workloads.
# This may be replaced when dependencies are built.
