# Empty compiler generated dependencies file for lsms_vliwsim.
# This may be replaced when dependencies are built.
