file(REMOVE_RECURSE
  "liblsms_vliwsim.a"
)
