file(REMOVE_RECURSE
  "CMakeFiles/lsms_vliwsim.dir/Execution.cpp.o"
  "CMakeFiles/lsms_vliwsim.dir/Execution.cpp.o.d"
  "CMakeFiles/lsms_vliwsim.dir/MachineSim.cpp.o"
  "CMakeFiles/lsms_vliwsim.dir/MachineSim.cpp.o.d"
  "liblsms_vliwsim.a"
  "liblsms_vliwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_vliwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
