file(REMOVE_RECURSE
  "liblsms_machine.a"
)
