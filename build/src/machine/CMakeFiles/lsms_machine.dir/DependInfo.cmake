
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/MachineModel.cpp" "src/machine/CMakeFiles/lsms_machine.dir/MachineModel.cpp.o" "gcc" "src/machine/CMakeFiles/lsms_machine.dir/MachineModel.cpp.o.d"
  "/root/repo/src/machine/ModuloResourceTable.cpp" "src/machine/CMakeFiles/lsms_machine.dir/ModuloResourceTable.cpp.o" "gcc" "src/machine/CMakeFiles/lsms_machine.dir/ModuloResourceTable.cpp.o.d"
  "/root/repo/src/machine/Opcode.cpp" "src/machine/CMakeFiles/lsms_machine.dir/Opcode.cpp.o" "gcc" "src/machine/CMakeFiles/lsms_machine.dir/Opcode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lsms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
