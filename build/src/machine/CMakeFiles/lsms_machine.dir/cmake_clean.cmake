file(REMOVE_RECURSE
  "CMakeFiles/lsms_machine.dir/MachineModel.cpp.o"
  "CMakeFiles/lsms_machine.dir/MachineModel.cpp.o.d"
  "CMakeFiles/lsms_machine.dir/ModuloResourceTable.cpp.o"
  "CMakeFiles/lsms_machine.dir/ModuloResourceTable.cpp.o.d"
  "CMakeFiles/lsms_machine.dir/Opcode.cpp.o"
  "CMakeFiles/lsms_machine.dir/Opcode.cpp.o.d"
  "liblsms_machine.a"
  "liblsms_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
