# Empty dependencies file for lsms_machine.
# This may be replaced when dependencies are built.
