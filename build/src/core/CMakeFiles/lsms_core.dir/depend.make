# Empty dependencies file for lsms_core.
# This may be replaced when dependencies are built.
