file(REMOVE_RECURSE
  "liblsms_core.a"
)
