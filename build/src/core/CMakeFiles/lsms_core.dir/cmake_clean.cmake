file(REMOVE_RECURSE
  "CMakeFiles/lsms_core.dir/AcyclicScheduler.cpp.o"
  "CMakeFiles/lsms_core.dir/AcyclicScheduler.cpp.o.d"
  "CMakeFiles/lsms_core.dir/FuAssignment.cpp.o"
  "CMakeFiles/lsms_core.dir/FuAssignment.cpp.o.d"
  "CMakeFiles/lsms_core.dir/ModuloScheduler.cpp.o"
  "CMakeFiles/lsms_core.dir/ModuloScheduler.cpp.o.d"
  "CMakeFiles/lsms_core.dir/SchedulePrinter.cpp.o"
  "CMakeFiles/lsms_core.dir/SchedulePrinter.cpp.o.d"
  "CMakeFiles/lsms_core.dir/Validate.cpp.o"
  "CMakeFiles/lsms_core.dir/Validate.cpp.o.d"
  "liblsms_core.a"
  "liblsms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
