# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/bounds_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/regalloc_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/unroll_test[1]_include.cmake")
include("/root/repo/build/tests/mve_test[1]_include.cmake")
include("/root/repo/build/tests/acyclic_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_edge_test[1]_include.cmake")
include("/root/repo/build/tests/execution_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/strided_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
