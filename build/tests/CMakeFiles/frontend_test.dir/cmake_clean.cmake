file(REMOVE_RECURSE
  "CMakeFiles/frontend_test.dir/frontend_test.cpp.o"
  "CMakeFiles/frontend_test.dir/frontend_test.cpp.o.d"
  "frontend_test"
  "frontend_test.pdb"
  "frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
