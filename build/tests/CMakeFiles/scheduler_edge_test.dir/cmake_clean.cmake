file(REMOVE_RECURSE
  "CMakeFiles/scheduler_edge_test.dir/scheduler_edge_test.cpp.o"
  "CMakeFiles/scheduler_edge_test.dir/scheduler_edge_test.cpp.o.d"
  "scheduler_edge_test"
  "scheduler_edge_test.pdb"
  "scheduler_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
