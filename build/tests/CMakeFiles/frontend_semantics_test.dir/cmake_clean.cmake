file(REMOVE_RECURSE
  "CMakeFiles/frontend_semantics_test.dir/frontend_semantics_test.cpp.o"
  "CMakeFiles/frontend_semantics_test.dir/frontend_semantics_test.cpp.o.d"
  "frontend_semantics_test"
  "frontend_semantics_test.pdb"
  "frontend_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
