# Empty compiler generated dependencies file for frontend_semantics_test.
# This may be replaced when dependencies are built.
