file(REMOVE_RECURSE
  "CMakeFiles/mve_test.dir/mve_test.cpp.o"
  "CMakeFiles/mve_test.dir/mve_test.cpp.o.d"
  "mve_test"
  "mve_test.pdb"
  "mve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
