# Empty compiler generated dependencies file for mve_test.
# This may be replaced when dependencies are built.
