file(REMOVE_RECURSE
  "CMakeFiles/bounds_test.dir/bounds_test.cpp.o"
  "CMakeFiles/bounds_test.dir/bounds_test.cpp.o.d"
  "bounds_test"
  "bounds_test.pdb"
  "bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
