file(REMOVE_RECURSE
  "CMakeFiles/machine_test.dir/machine_test.cpp.o"
  "CMakeFiles/machine_test.dir/machine_test.cpp.o.d"
  "machine_test"
  "machine_test.pdb"
  "machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
