file(REMOVE_RECURSE
  "CMakeFiles/execution_test.dir/execution_test.cpp.o"
  "CMakeFiles/execution_test.dir/execution_test.cpp.o.d"
  "execution_test"
  "execution_test.pdb"
  "execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
