# Empty dependencies file for execution_test.
# This may be replaced when dependencies are built.
