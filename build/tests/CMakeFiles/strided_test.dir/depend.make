# Empty dependencies file for strided_test.
# This may be replaced when dependencies are built.
