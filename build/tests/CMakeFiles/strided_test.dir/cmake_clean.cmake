file(REMOVE_RECURSE
  "CMakeFiles/strided_test.dir/strided_test.cpp.o"
  "CMakeFiles/strided_test.dir/strided_test.cpp.o.d"
  "strided_test"
  "strided_test.pdb"
  "strided_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
