
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/strided_test.cpp" "tests/CMakeFiles/strided_test.dir/strided_test.cpp.o" "gcc" "tests/CMakeFiles/strided_test.dir/strided_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/lsms_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/lsms_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vliwsim/CMakeFiles/lsms_vliwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/lsms_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/lsms_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lsms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/lsms_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lsms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lsms_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lsms_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lsms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
