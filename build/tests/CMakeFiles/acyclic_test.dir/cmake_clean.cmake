file(REMOVE_RECURSE
  "CMakeFiles/acyclic_test.dir/acyclic_test.cpp.o"
  "CMakeFiles/acyclic_test.dir/acyclic_test.cpp.o.d"
  "acyclic_test"
  "acyclic_test.pdb"
  "acyclic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acyclic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
