file(REMOVE_RECURSE
  "CMakeFiles/unroll_test.dir/unroll_test.cpp.o"
  "CMakeFiles/unroll_test.dir/unroll_test.cpp.o.d"
  "unroll_test"
  "unroll_test.pdb"
  "unroll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unroll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
