# Empty compiler generated dependencies file for ablation_ii_increment.
# This may be replaced when dependencies are built.
