file(REMOVE_RECURSE
  "CMakeFiles/ablation_ii_increment.dir/ablation_ii_increment.cpp.o"
  "CMakeFiles/ablation_ii_increment.dir/ablation_ii_increment.cpp.o.d"
  "ablation_ii_increment"
  "ablation_ii_increment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ii_increment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
