file(REMOVE_RECURSE
  "CMakeFiles/fig5_pressure_gap.dir/fig5_pressure_gap.cpp.o"
  "CMakeFiles/fig5_pressure_gap.dir/fig5_pressure_gap.cpp.o.d"
  "fig5_pressure_gap"
  "fig5_pressure_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pressure_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
