# Empty dependencies file for fig5_pressure_gap.
# This may be replaced when dependencies are built.
