# Empty compiler generated dependencies file for ablation_latency.
# This may be replaced when dependencies are built.
