# Empty dependencies file for fig6_maxlive.
# This may be replaced when dependencies are built.
