file(REMOVE_RECURSE
  "CMakeFiles/fig6_maxlive.dir/fig6_maxlive.cpp.o"
  "CMakeFiles/fig6_maxlive.dir/fig6_maxlive.cpp.o.d"
  "fig6_maxlive"
  "fig6_maxlive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_maxlive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
