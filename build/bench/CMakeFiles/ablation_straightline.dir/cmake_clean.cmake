file(REMOVE_RECURSE
  "CMakeFiles/ablation_straightline.dir/ablation_straightline.cpp.o"
  "CMakeFiles/ablation_straightline.dir/ablation_straightline.cpp.o.d"
  "ablation_straightline"
  "ablation_straightline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_straightline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
