# Empty dependencies file for ablation_straightline.
# This may be replaced when dependencies are built.
