# Empty dependencies file for table2_loop_stats.
# This may be replaced when dependencies are built.
