file(REMOVE_RECURSE
  "CMakeFiles/table2_loop_stats.dir/table2_loop_stats.cpp.o"
  "CMakeFiles/table2_loop_stats.dir/table2_loop_stats.cpp.o.d"
  "table2_loop_stats"
  "table2_loop_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_loop_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
