file(REMOVE_RECURSE
  "CMakeFiles/fig7_gpr.dir/fig7_gpr.cpp.o"
  "CMakeFiles/fig7_gpr.dir/fig7_gpr.cpp.o.d"
  "fig7_gpr"
  "fig7_gpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
