# Empty compiler generated dependencies file for fig7_gpr.
# This may be replaced when dependencies are built.
