# Empty dependencies file for regalloc_quality.
# This may be replaced when dependencies are built.
