file(REMOVE_RECURSE
  "CMakeFiles/regalloc_quality.dir/regalloc_quality.cpp.o"
  "CMakeFiles/regalloc_quality.dir/regalloc_quality.cpp.o.d"
  "regalloc_quality"
  "regalloc_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regalloc_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
