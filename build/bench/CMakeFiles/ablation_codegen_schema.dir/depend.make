# Empty dependencies file for ablation_codegen_schema.
# This may be replaced when dependencies are built.
