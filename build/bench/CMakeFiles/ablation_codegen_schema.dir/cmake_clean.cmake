file(REMOVE_RECURSE
  "CMakeFiles/ablation_codegen_schema.dir/ablation_codegen_schema.cpp.o"
  "CMakeFiles/ablation_codegen_schema.dir/ablation_codegen_schema.cpp.o.d"
  "ablation_codegen_schema"
  "ablation_codegen_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codegen_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
