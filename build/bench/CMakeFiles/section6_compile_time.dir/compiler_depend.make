# Empty compiler generated dependencies file for section6_compile_time.
# This may be replaced when dependencies are built.
