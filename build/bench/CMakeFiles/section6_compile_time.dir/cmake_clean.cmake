file(REMOVE_RECURSE
  "CMakeFiles/section6_compile_time.dir/section6_compile_time.cpp.o"
  "CMakeFiles/section6_compile_time.dir/section6_compile_time.cpp.o.d"
  "section6_compile_time"
  "section6_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section6_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
