file(REMOVE_RECURSE
  "liblsms_bench_common.a"
)
