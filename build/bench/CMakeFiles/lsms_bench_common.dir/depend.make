# Empty dependencies file for lsms_bench_common.
# This may be replaced when dependencies are built.
