file(REMOVE_RECURSE
  "CMakeFiles/lsms_bench_common.dir/SuiteMetrics.cpp.o"
  "CMakeFiles/lsms_bench_common.dir/SuiteMetrics.cpp.o.d"
  "liblsms_bench_common.a"
  "liblsms_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
