# Empty dependencies file for table3_slack_perf.
# This may be replaced when dependencies are built.
