file(REMOVE_RECURSE
  "CMakeFiles/table3_slack_perf.dir/table3_slack_perf.cpp.o"
  "CMakeFiles/table3_slack_perf.dir/table3_slack_perf.cpp.o.d"
  "table3_slack_perf"
  "table3_slack_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_slack_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
