# Empty compiler generated dependencies file for table4_cydrome_perf.
# This may be replaced when dependencies are built.
