file(REMOVE_RECURSE
  "CMakeFiles/table4_cydrome_perf.dir/table4_cydrome_perf.cpp.o"
  "CMakeFiles/table4_cydrome_perf.dir/table4_cydrome_perf.cpp.o.d"
  "table4_cydrome_perf"
  "table4_cydrome_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cydrome_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
