# Empty compiler generated dependencies file for ablation_bidirectional.
# This may be replaced when dependencies are built.
