file(REMOVE_RECURSE
  "CMakeFiles/ablation_bidirectional.dir/ablation_bidirectional.cpp.o"
  "CMakeFiles/ablation_bidirectional.dir/ablation_bidirectional.cpp.o.d"
  "ablation_bidirectional"
  "ablation_bidirectional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bidirectional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
