# Empty compiler generated dependencies file for ablation_unroll_mve.
# This may be replaced when dependencies are built.
