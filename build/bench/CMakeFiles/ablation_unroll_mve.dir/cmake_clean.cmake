file(REMOVE_RECURSE
  "CMakeFiles/ablation_unroll_mve.dir/ablation_unroll_mve.cpp.o"
  "CMakeFiles/ablation_unroll_mve.dir/ablation_unroll_mve.cpp.o.d"
  "ablation_unroll_mve"
  "ablation_unroll_mve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unroll_mve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
