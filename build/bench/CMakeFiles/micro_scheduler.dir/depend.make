# Empty dependencies file for micro_scheduler.
# This may be replaced when dependencies are built.
