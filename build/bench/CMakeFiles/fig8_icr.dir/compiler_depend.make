# Empty compiler generated dependencies file for fig8_icr.
# This may be replaced when dependencies are built.
