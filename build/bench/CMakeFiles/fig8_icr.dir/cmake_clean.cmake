file(REMOVE_RECURSE
  "CMakeFiles/fig8_icr.dir/fig8_icr.cpp.o"
  "CMakeFiles/fig8_icr.dir/fig8_icr.cpp.o.d"
  "fig8_icr"
  "fig8_icr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_icr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
