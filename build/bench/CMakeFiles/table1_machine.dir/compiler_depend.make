# Empty compiler generated dependencies file for table1_machine.
# This may be replaced when dependencies are built.
