file(REMOVE_RECURSE
  "CMakeFiles/table1_machine.dir/table1_machine.cpp.o"
  "CMakeFiles/table1_machine.dir/table1_machine.cpp.o.d"
  "table1_machine"
  "table1_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
