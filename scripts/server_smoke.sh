#!/usr/bin/env bash
# End-to-end smoke for the socket front end + persistent store:
#   1. boot schedule_server on an ephemeral port with a fresh store,
#   2. drive it with the load generator over real sockets,
#   3. SIGTERM and verify the graceful-drain handshake (exit 0),
#   4. restart on the same store and verify the warm run recovers records
#      and answers without errors or sheds,
#   5. hit the warm server with a short open-arrival (Poisson) run over a
#      few hundred connections and sanity-bound its p99.
#
# Usage: scripts/server_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
SERVER=$BUILD_DIR/examples/schedule_server
LOADGEN=$BUILD_DIR/bench/load_gen
[[ -x $SERVER && -x $LOADGEN ]] || {
  echo "server_smoke: build schedule_server and load_gen first" >&2
  exit 2
}

WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  [[ -n $SERVER_PID ]] && kill -KILL "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

STORE=$WORK/smoke_store.lsr

start_server() {
  "$SERVER" --port=0 --print-port --store="$STORE" \
    >"$WORK/port.txt" 2>"$WORK/server.log" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s $WORK/port.txt ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "server_smoke: server died at startup" >&2
      cat "$WORK/server.log" >&2
      exit 1
    }
    sleep 0.05
  done
  PORT=$(cat "$WORK/port.txt")
  [[ -n $PORT ]] || { echo "server_smoke: no port published" >&2; exit 1; }
}

stop_server() { # graceful: SIGTERM must drain and exit 0
  kill -TERM "$SERVER_PID"
  local rc=0
  wait "$SERVER_PID" || rc=$?
  SERVER_PID=
  if [[ $rc -ne 0 ]]; then
    echo "server_smoke: server exited $rc on SIGTERM" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  grep -q "drained cleanly" "$WORK/server.log" || {
    echo "server_smoke: no drain confirmation in server log" >&2
    cat "$WORK/server.log" >&2
    exit 1
  }
}

run_load() {
  # --corpus=0: the 43 suite kernels only, so the bnb ladder stays cheap.
  "$LOADGEN" --port="$PORT" --connections=4 --pipeline=8 \
    --engine=bnb --corpus=0 --json | tee "$WORK/load.json"
  grep -q '"errors":0' "$WORK/load.json" || {
    echo "server_smoke: load generator saw response errors" >&2
    exit 1
  }
}

run_open_load() {
  # Open-arrival sanity: a couple hundred persistent connections of
  # Poisson slack traffic against the warm server. Everything must be
  # answered (no errors, nothing shed) with a sub-second p99 — a loose
  # bound that still catches event-loop stalls; the tight tail gate lives
  # in perf_report's full mode.
  "$LOADGEN" --port="$PORT" --open --connections=200 --rps=500 \
    --requests=2000 --engine=slack --corpus=0 --json \
    | tee "$WORK/open.json"
  grep -q '"errors":0' "$WORK/open.json" || {
    echo "server_smoke: open-arrival run saw response errors" >&2
    exit 1
  }
  grep -q '"shed":0' "$WORK/open.json" || {
    echo "server_smoke: open-arrival run had requests shed" >&2
    exit 1
  }
  P99=$(sed -n 's/.*"p99_us":\([0-9]*\).*/\1/p' "$WORK/open.json")
  if [[ -z $P99 || $P99 -ge 1000000 ]]; then
    echo "server_smoke: open-arrival p99 ${P99:-unparsed}us not < 1s" >&2
    exit 1
  fi
}

echo "== cold pass =="
start_server
run_load
stop_server

echo "== warm restart =="
start_server
grep -q "records recovered" "$WORK/server.log" || {
  echo "server_smoke: restart did not recover store records" >&2
  cat "$WORK/server.log" >&2
  exit 1
}
if grep -q "(0 records recovered)" "$WORK/server.log"; then
  echo "server_smoke: store recovered zero records on restart" >&2
  cat "$WORK/server.log" >&2
  exit 1
fi
run_load

echo "== open-arrival pass =="
run_open_load
stop_server

echo "server_smoke: OK"
