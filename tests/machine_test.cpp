//===----------------------------------------------------------------------===//
/// \file Unit tests for the machine model and modulo resource table.
//===----------------------------------------------------------------------===//

#include "machine/MachineModel.h"
#include "machine/ModuloResourceTable.h"

#include <gtest/gtest.h>

using namespace lsms;

TEST(MachineModel, Table1Latencies) {
  const MachineModel M = MachineModel::cydra5();
  EXPECT_EQ(M.latency(Opcode::Load), 13);
  EXPECT_EQ(M.latency(Opcode::Store), 1);
  EXPECT_EQ(M.latency(Opcode::AddrAdd), 1);
  EXPECT_EQ(M.latency(Opcode::IntAdd), 1);
  EXPECT_EQ(M.latency(Opcode::FloatAdd), 1);
  EXPECT_EQ(M.latency(Opcode::FloatMul), 2);
  EXPECT_EQ(M.latency(Opcode::IntDiv), 17);
  EXPECT_EQ(M.latency(Opcode::FloatSqrt), 21);
  EXPECT_EQ(M.latency(Opcode::BrTop), 2);
}

TEST(MachineModel, Table1UnitCounts) {
  const MachineModel M = MachineModel::cydra5();
  EXPECT_EQ(M.unitCount(FuKind::MemoryPort), 2);
  EXPECT_EQ(M.unitCount(FuKind::AddressAlu), 2);
  EXPECT_EQ(M.unitCount(FuKind::Adder), 1);
  EXPECT_EQ(M.unitCount(FuKind::Multiplier), 1);
  EXPECT_EQ(M.unitCount(FuKind::Divider), 1);
  EXPECT_EQ(M.unitCount(FuKind::Branch), 1);
}

TEST(MachineModel, DividerIsNotPipelined) {
  const MachineModel M = MachineModel::cydra5();
  EXPECT_FALSE(M.isPipelined(FuKind::Divider));
  EXPECT_TRUE(M.isPipelined(FuKind::Adder));
  EXPECT_EQ(M.reservationCycles(Opcode::FloatDiv), 17);
  EXPECT_EQ(M.reservationCycles(Opcode::FloatSqrt), 21);
  EXPECT_EQ(M.reservationCycles(Opcode::Load), 1);
}

TEST(MachineModel, PseudoOpsTakeNoResources) {
  const MachineModel M = MachineModel::cydra5();
  EXPECT_EQ(M.unitFor(Opcode::Start), FuKind::None);
  EXPECT_EQ(M.unitFor(Opcode::Stop), FuKind::None);
  EXPECT_EQ(M.reservationCycles(Opcode::Start), 0);
  EXPECT_EQ(M.latency(Opcode::Start), 0);
}

TEST(MachineModel, LoadLatencyOverride) {
  const MachineModel M = MachineModel::withLoadLatency(5);
  EXPECT_EQ(M.latency(Opcode::Load), 5);
  EXPECT_EQ(M.latency(Opcode::Store), 1);
}

TEST(MachineModel, OpcodeNamesAreStable) {
  EXPECT_STREQ(opcodeName(Opcode::FloatAdd), "fadd");
  EXPECT_STREQ(opcodeName(Opcode::BrTop), "brtop");
  EXPECT_STREQ(opcodeName(Opcode::Select), "select");
}

TEST(OpcodeClassification, Predicates) {
  EXPECT_TRUE(producesPredicate(Opcode::CmpLT));
  EXPECT_TRUE(producesPredicate(Opcode::PredNot));
  EXPECT_FALSE(producesPredicate(Opcode::Select));
  EXPECT_FALSE(producesPredicate(Opcode::FloatAdd));
}

TEST(OpcodeClassification, DividerOps) {
  EXPECT_TRUE(isDividerOp(Opcode::IntMod));
  EXPECT_TRUE(isDividerOp(Opcode::FloatSqrt));
  EXPECT_FALSE(isDividerOp(Opcode::FloatMul));
}

TEST(ModuloResourceTable, ModuloConflicts) {
  const MachineModel M = MachineModel::cydra5();
  ModuloResourceTable Mrt(M, 4);
  EXPECT_TRUE(Mrt.canPlace(Opcode::FloatAdd, FuKind::Adder, 0, 2));
  Mrt.place(Opcode::FloatAdd, FuKind::Adder, 0, 2);
  // Cycle 6 == 2 mod 4 conflicts; cycle 3 does not.
  EXPECT_FALSE(Mrt.canPlace(Opcode::FloatAdd, FuKind::Adder, 0, 6));
  EXPECT_TRUE(Mrt.canPlace(Opcode::FloatAdd, FuKind::Adder, 0, 3));
}

TEST(ModuloResourceTable, InstancesAreIndependent) {
  const MachineModel M = MachineModel::cydra5();
  ModuloResourceTable Mrt(M, 2);
  Mrt.place(Opcode::Load, FuKind::MemoryPort, 0, 0);
  EXPECT_FALSE(Mrt.canPlace(Opcode::Store, FuKind::MemoryPort, 0, 0));
  EXPECT_TRUE(Mrt.canPlace(Opcode::Store, FuKind::MemoryPort, 1, 0));
}

TEST(ModuloResourceTable, NonPipelinedReservationSpansLatency) {
  const MachineModel M = MachineModel::cydra5();
  ModuloResourceTable Mrt(M, 20);
  Mrt.place(Opcode::FloatDiv, FuKind::Divider, 0, 2);
  // Divider busy cycles 2..18 (mod 20).
  EXPECT_FALSE(Mrt.canPlace(Opcode::IntDiv, FuKind::Divider, 0, 10));
  EXPECT_FALSE(Mrt.canPlace(Opcode::IntDiv, FuKind::Divider, 0, 3));
  Mrt.remove(Opcode::FloatDiv, FuKind::Divider, 0, 2);
  EXPECT_TRUE(Mrt.canPlace(Opcode::IntDiv, FuKind::Divider, 0, 10));
}

TEST(ModuloResourceTable, ReservationLongerThanIIRejected) {
  const MachineModel M = MachineModel::cydra5();
  ModuloResourceTable Mrt(M, 16);
  // A 17-cycle divide cannot fit at II=16: it would collide with its own
  // next-iteration instance.
  EXPECT_FALSE(Mrt.canPlace(Opcode::FloatDiv, FuKind::Divider, 0, 0));
}

TEST(ModuloResourceTable, NegativeCyclesWrapCorrectly) {
  const MachineModel M = MachineModel::cydra5();
  ModuloResourceTable Mrt(M, 4);
  Mrt.place(Opcode::FloatAdd, FuKind::Adder, 0, -1); // == cycle 3 mod 4
  EXPECT_FALSE(Mrt.canPlace(Opcode::FloatAdd, FuKind::Adder, 0, 3));
  EXPECT_EQ(Mrt.occupancy(FuKind::Adder, 0, 3), 1);
}

TEST(ModuloResourceTable, ClearDropsEverything) {
  const MachineModel M = MachineModel::cydra5();
  ModuloResourceTable Mrt(M, 3);
  Mrt.place(Opcode::Load, FuKind::MemoryPort, 0, 1);
  Mrt.clear();
  EXPECT_TRUE(Mrt.canPlace(Opcode::Load, FuKind::MemoryPort, 0, 1));
}
