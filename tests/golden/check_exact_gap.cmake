# Runs the fixed-seed exact_gap sweep and fails if the report drifted from
# the checked-in golden. The sweep is deterministic (seeded RNG, index-
# ordered merge), so any diff is a real behavior change — most importantly
# a loop moving off II-gap 0, i.e. the heuristic losing optimality it had.
# Regenerate intentionally with: ./build/bench/exact_gap > tests/golden/exact_gap.txt

if(NOT EXACT_GAP_BIN OR NOT GOLDEN_FILE OR NOT WORK_DIR)
  message(FATAL_ERROR "check_exact_gap.cmake needs EXACT_GAP_BIN, GOLDEN_FILE, WORK_DIR")
endif()

set(ACTUAL "${WORK_DIR}/exact_gap_actual.txt")
execute_process(
  COMMAND ${EXACT_GAP_BIN}
  OUTPUT_FILE ${ACTUAL}
  RESULT_VARIABLE RUN_RC)
if(NOT RUN_RC EQUAL 0)
  message(FATAL_ERROR "exact_gap exited with ${RUN_RC} (validation failure?)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN_FILE} ${ACTUAL}
  RESULT_VARIABLE DIFF_RC)
if(NOT DIFF_RC EQUAL 0)
  execute_process(COMMAND diff -u ${GOLDEN_FILE} ${ACTUAL})
  message(FATAL_ERROR
    "exact_gap report drifted from tests/golden/exact_gap.txt -- if the "
    "change is intended (e.g. a scheduler improvement), regenerate the "
    "golden and justify the diff in the PR")
endif()
