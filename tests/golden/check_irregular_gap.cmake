# Runs the fixed-seed conservative-vs-speculative sweep and fails if the
# report drifted from the checked-in golden. The sweep is deterministic
# (seeded RNG, index-ordered merge, exact engines), so any diff is a real
# behavior change — most importantly a loop losing its certified II gap or
# a new validation/trace failure.
# Regenerate intentionally with:
#   ./build/bench/irregular_gap > tests/golden/irregular_gap.txt

if(NOT IRREGULAR_GAP_BIN OR NOT GOLDEN_FILE OR NOT WORK_DIR)
  message(FATAL_ERROR
    "check_irregular_gap.cmake needs IRREGULAR_GAP_BIN, GOLDEN_FILE, WORK_DIR")
endif()

set(ACTUAL "${WORK_DIR}/irregular_gap_actual.txt")
execute_process(
  COMMAND ${IRREGULAR_GAP_BIN}
  OUTPUT_FILE ${ACTUAL}
  RESULT_VARIABLE RUN_RC)
if(NOT RUN_RC EQUAL 0)
  message(FATAL_ERROR "irregular_gap exited with ${RUN_RC} (validation failure?)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN_FILE} ${ACTUAL}
  RESULT_VARIABLE DIFF_RC)
if(NOT DIFF_RC EQUAL 0)
  execute_process(COMMAND diff -u ${GOLDEN_FILE} ${ACTUAL})
  message(FATAL_ERROR
    "irregular_gap report drifted from tests/golden/irregular_gap.txt -- if "
    "the change is intended (e.g. a scheduler or generator improvement), "
    "regenerate the golden and justify the diff in the PR")
endif()
