//===----------------------------------------------------------------------===//
/// \file Round-trip tests for the DSL pretty-printer
/// (frontend/AstPrinter.h): parse -> print -> parse must yield a
/// structurally equal Program, and the printed source must compile to the
/// same loop body fingerprint as the original. Exercised over every suite
/// kernel, the seeded random benchmark corpus, and targeted precedence /
/// number-formatting cases.
//===----------------------------------------------------------------------===//

#include "frontend/AstPrinter.h"

#include "ServiceBenchCommon.h"
#include "frontend/LoopCompiler.h"
#include "frontend/Parser.h"
#include "service/LoopKey.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

void expectRoundTrip(const std::string &Source, const std::string &Label) {
  std::string Err;
  const std::unique_ptr<Program> First = parseProgram(Source, Err);
  ASSERT_NE(First, nullptr) << Label << ": " << Err;
  const std::string Printed = printProgram(*First);
  const std::unique_ptr<Program> Second = parseProgram(Printed, Err);
  ASSERT_NE(Second, nullptr)
      << Label << ": printed source failed to parse: " << Err
      << "\n--- printed ---\n"
      << Printed;
  EXPECT_TRUE(programsEqual(*First, *Second))
      << Label << "\n--- original ---\n"
      << Source << "\n--- printed ---\n"
      << Printed;
  // Printing is a fixpoint after one normalization pass.
  EXPECT_EQ(Printed, printProgram(*Second)) << Label;

  // The printed program must also MEAN the same thing: both sources
  // compile to loop bodies with identical canonical fingerprints.
  LoopBody Original, Reprinted;
  ASSERT_EQ(compileLoop(Source, Label, Original), "") << Label;
  ASSERT_EQ(compileLoop(Printed, Label, Reprinted), "") << Label;
  const LoopKey KeyA = canonicalLoopKey(Original);
  const LoopKey KeyB = canonicalLoopKey(Reprinted);
  EXPECT_EQ(KeyA.Hi, KeyB.Hi) << Label;
  EXPECT_EQ(KeyA.Lo, KeyB.Lo) << Label;
}

TEST(DslRoundTripTest, SuiteKernels) {
  for (const NamedKernel &K : kernelSources())
    expectRoundTrip(K.Source, K.Name);
}

TEST(DslRoundTripTest, SeededRandomPrograms) {
  for (uint64_t Seed = 0; Seed < 40; ++Seed)
    expectRoundTrip(randomDslSource(0x5eed + Seed),
                    "random" + std::to_string(Seed));
}

TEST(DslRoundTripTest, PrecedenceAndAssociativity) {
  // Right operands of - and / need parentheses; left ones do not.
  // Unary minus, nested conditionals, strided subscripts, and scientific
  // notation all have to survive the trip.
  expectRoundTrip("param a = 0.5\n"
                  "param b = 1e3\n"
                  "loop k = 2, n\n"
                  "  x[k] = a - (b - x[k-1]) / (a / b / 2.0)\n"
                  "  y[k] = -(x[k] + 1.0) * (a + b) * 2.5e-2\n"
                  "  if (x[k] < y[k-1]) then\n"
                  "    if (a <= b) then\n"
                  "      z[2*k+1] = sqrt(x[k] * x[k] + 1.0)\n"
                  "    else\n"
                  "      z[2*k+1] = z[2*k-1]\n"
                  "    end\n"
                  "  else\n"
                  "    z[2*k+1] = 0.125\n"
                  "  end\n"
                  "end\n",
                  "precedence");
}

TEST(DslRoundTripTest, NumbersPrintInShortestRoundTripForm) {
  std::string Err;
  const std::unique_ptr<Program> Prog = parseProgram(
      "param a = 0.1\nparam b = 1e100\nparam c = 3\n"
      "loop i = 1, n\n  x[i] = a\nend\n",
      Err);
  ASSERT_NE(Prog, nullptr) << Err;
  const std::string Printed = printProgram(*Prog);
  EXPECT_NE(Printed.find("0.1"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("1e+100"), std::string::npos) << Printed;
  const std::unique_ptr<Program> Again = parseProgram(Printed, Err);
  ASSERT_NE(Again, nullptr) << Err << "\n" << Printed;
  EXPECT_TRUE(programsEqual(*Prog, *Again)) << Printed;
}

} // namespace
