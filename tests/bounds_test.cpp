//===----------------------------------------------------------------------===//
/// \file Unit tests for ResMII/RecMII/MII, critical-op marking, lifetimes,
/// MaxLive, MinLT, and MinAvg (Sections 3 and 5.1 of the paper).
//===----------------------------------------------------------------------===//

#include "bounds/Bounds.h"
#include "bounds/Lifetimes.h"
#include "ir/IRBuilder.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

} // namespace

TEST(Bounds, SampleLoopResMII) {
  // Two fadds on one adder -> ResMII 2 (stores: 2 on 2 ports -> 1;
  // address adds: 2 on 2 ALUs -> 1; brtop: 1).
  const LoopBody Body = buildSampleLoop();
  EXPECT_EQ(computeResMII(Body, machine()), 2);
}

TEST(Bounds, DivideLoopResMII) {
  // One 17-cycle divide on the non-pipelined divider dominates.
  const LoopBody Body = buildDivideLoop();
  EXPECT_EQ(computeResMII(Body, machine()), 17);
}

TEST(Bounds, SampleLoopMII) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  const MIIBounds B = computeMII(Graph);
  EXPECT_EQ(B.ResMII, 2);
  EXPECT_EQ(B.RecMII, 1);
  EXPECT_EQ(B.MII, 2);
}

TEST(Bounds, LinearRecurrenceIsRecMIIBound) {
  const LoopBody Body = buildLinearRecurrenceLoop();
  const DepGraph Graph(Body, machine());
  const MIIBounds B = computeMII(Graph);
  EXPECT_EQ(B.RecMII, 3);
  EXPECT_GE(B.MII, 3);
  EXPECT_EQ(B.MII, std::max(B.ResMII, B.RecMII));
}

TEST(Bounds, CriticalOpsAtMII) {
  const LoopBody Body = buildSampleLoop();
  const auto Critical = markCriticalOps(Body, machine(), /*II=*/2);
  // The adder is saturated (2 of 2 cycles); both fadds are critical.
  int NumCritical = 0;
  for (const Operation &Op : Body.Ops)
    if (Critical[static_cast<size_t>(Op.Id)]) {
      ++NumCritical;
      EXPECT_EQ(machine().unitFor(Op.Opc), FuKind::Adder) << Op.Name;
    }
  EXPECT_EQ(NumCritical, 2);
}

TEST(Bounds, NothingCriticalAtLargeII) {
  const LoopBody Body = buildSampleLoop();
  const auto Critical = markCriticalOps(Body, machine(), /*II=*/100);
  for (const Operation &Op : Body.Ops)
    EXPECT_FALSE(Critical[static_cast<size_t>(Op.Id)]);
}

TEST(Lifetimes, Figure4LiveVector) {
  // Reconstruct Figure 4: x defined at 0 with lifetime 5, y defined at 1
  // with lifetime 3, II = 2 -> LiveVector <4,4>.
  const LoopBody Body = buildSampleLoop();

  // Hand-build the paper's schedule: x-fadd at 0, y-fadd at 1; place the
  // rest where they do not affect the x/y lifetimes under scrutiny.
  std::vector<int> Times(static_cast<size_t>(Body.numOps()), 0);
  int XOp = -1, YOp = -1;
  for (const Value &V : Body.Values) {
    if (V.Name == "x")
      XOp = V.Def;
    if (V.Name == "y")
      YOp = V.Def;
  }
  ASSERT_GE(XOp, 0);
  ASSERT_GE(YOp, 0);
  Times[static_cast<size_t>(XOp)] = 0;
  Times[static_cast<size_t>(YOp)] = 1;
  // Stores read x and y at omega 0; schedule them right after definition so
  // they do not extend the lifetimes beyond the recurrence reads.
  for (const Operation &Op : Body.Ops)
    if (Op.Opc == Opcode::Store)
      Times[static_cast<size_t>(Op.Id)] =
          Times[static_cast<size_t>(Body.value(Op.Operands[1].Value).Def)] +
          1;

  const PressureInfo Info = computePressure(Body, Times, /*II=*/2,
                                            RegClass::RR);
  // x: defined 0, last use x@2 by y-fadd at 1 -> end 1 + 2*2 = 5.
  int XVal = -1, YVal = -1;
  for (const Value &V : Body.Values) {
    if (V.Name == "x")
      XVal = V.Id;
    if (V.Name == "y")
      YVal = V.Id;
  }
  EXPECT_EQ(Info.Length[static_cast<size_t>(XVal)], 5);
  // y: defined 1, last use y@2 by x-fadd at 0 -> end 0 + 4 = 4, length 3.
  EXPECT_EQ(Info.Length[static_cast<size_t>(YVal)], 3);
}

TEST(Lifetimes, LiveVectorWrapsModulo) {
  // One value with lifetime 5 at II=2 occupies columns <3,2>.
  LoopBody Body;
  IRBuilder B(Body);
  const int X = B.declareValue(RegClass::RR, "x");
  B.defineValue(X, Opcode::FloatAdd, {Use{X, 1}, Use{X, 5}});
  B.setSeeds(X, {0, 0, 0, 0, 0});
  B.finish();

  std::vector<int> Times(static_cast<size_t>(Body.numOps()), 0);
  // Def at 0; last use omega 5 by itself at 0 -> end 5*II... use II=2:
  // lifetime = 0 + 5*2 - 0 = 10 -> full columns.
  const PressureInfo Info = computePressure(Body, Times, 2, RegClass::RR);
  EXPECT_EQ(Info.Length[static_cast<size_t>(X)], 10);
  EXPECT_EQ(Info.LiveVector[0], 5);
  EXPECT_EQ(Info.LiveVector[1], 5);
  EXPECT_EQ(Info.MaxLive, 5);
  EXPECT_DOUBLE_EQ(Info.AvgLive, 5.0);
}

TEST(Lifetimes, MinLTForAccumulator) {
  // dot product: s = s + p. MinLT(s) = omega*II + MinDist(def,def) = II.
  const LoopBody Body = buildDotLoop();
  const DepGraph Graph(Body, machine());
  MinDistMatrix M;
  ASSERT_TRUE(M.compute(Graph, 4));
  int S = -1;
  for (const Value &V : Body.Values)
    if (V.Name == "s")
      S = V.Id;
  ASSERT_GE(S, 0);
  EXPECT_EQ(computeMinLT(Graph, M, S), 4);
}

TEST(Lifetimes, MinLTLowerBoundsActualLifetime) {
  // For any valid schedule, each value's lifetime >= MinLT.
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  const int II = 2;
  MinDistMatrix M;
  ASSERT_TRUE(M.compute(Graph, II));

  // Produce a legal schedule by taking Estart times (ASAP), which satisfies
  // dependences by construction of MinDist (resources ignored: lifetimes
  // do not care).
  std::vector<int> Times(static_cast<size_t>(Body.numOps()));
  for (int X = 0; X < Body.numOps(); ++X)
    Times[static_cast<size_t>(X)] =
        static_cast<int>(M.at(Body.startOp(), X));

  const PressureInfo Info = computePressure(Body, Times, II, RegClass::RR);
  for (const Value &V : Body.Values) {
    if (V.Class != RegClass::RR)
      continue;
    if (Info.Length[static_cast<size_t>(V.Id)] == 0)
      continue; // unused
    EXPECT_GE(Info.Length[static_cast<size_t>(V.Id)],
              computeMinLT(Graph, M, V.Id))
        << V.Name;
  }
}

TEST(Lifetimes, MinAvgCountsOnlyRRValues) {
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  MinDistMatrix M;
  ASSERT_TRUE(M.compute(Graph, 3));
  const long MinAvg = computeMinAvg(Graph, M);
  EXPECT_GT(MinAvg, 0);
  // Loads are live for >= 13 cycles at II=3 -> each contributes >= 5;
  // two loads alone give >= 10.
  EXPECT_GE(MinAvg, 10);
}

TEST(Lifetimes, GprCount) {
  const LoopBody Daxpy = buildDaxpyLoop();
  // "a" plus the shared stride constant 4... addressStream uses constant
  // strides (deduplicated), so: a, #0 (stride).
  EXPECT_EQ(countGprs(Daxpy), 2);
}
