//===----------------------------------------------------------------------===//
/// \file Tests for IR-level loop unrolling and the fractional-MII
/// experiment of Section 3.1: unrolled loops must verify, execute
/// memory-equivalently to the source loop, schedule, and — for loops whose
/// exact minimum II is fractional — achieve a lower II per source
/// iteration.
//===----------------------------------------------------------------------===//

#include "bounds/Bounds.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "frontend/LoopCompiler.h"
#include "ir/Unroll.h"
#include "vliwsim/Execution.h"
#include "workloads/Kernels.h"
#include "workloads/RandomLoop.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

/// Runs both bodies over the same source-iteration range and compares the
/// final memory images (live-out ids differ across bodies by design).
void checkMemoryEquivalence(const LoopBody &Orig, const LoopBody &Unrolled,
                            int Factor, long SourceIterations) {
  ASSERT_EQ(SourceIterations % Factor, 0) << "pick a multiple of the factor";
  const ExecutionResult A = runReference(Orig, SourceIterations);
  ASSERT_EQ(A.Error, "") << Orig.Name;
  const ExecutionResult B =
      runReference(Unrolled, SourceIterations / Factor);
  ASSERT_EQ(B.Error, "") << Unrolled.Name;

  ExecutionResult AA = A, BB = B;
  AA.LiveOuts.clear();
  BB.LiveOuts.clear();
  EXPECT_EQ(compareExecutions(AA, BB), "") << Unrolled.Name;
}

} // namespace

TEST(Unroll, FactorOneIsACopy) {
  const LoopBody Body = buildSampleLoop();
  const LoopBody Copy = unrollLoop(Body, 1);
  EXPECT_EQ(Copy.verify(), "");
  EXPECT_EQ(Copy.numMachineOps(), Body.numMachineOps());
  checkMemoryEquivalence(Body, Copy, 1, 20);
}

TEST(Unroll, SampleLoopByTwo) {
  const LoopBody Body = buildSampleLoop();
  const LoopBody U2 = unrollLoop(Body, 2);
  EXPECT_EQ(U2.verify(), "");
  // Everything except brtop doubles.
  EXPECT_EQ(U2.numMachineOps(), 2 * (Body.numMachineOps() - 1) + 1);
  checkMemoryEquivalence(Body, U2, 2, 24);
}

TEST(Unroll, KernelsByTwoAndThree) {
  for (const LoopBody *Body :
       {new LoopBody(buildDaxpyLoop()), new LoopBody(buildDotLoop()),
        new LoopBody(buildLinearRecurrenceLoop()),
        new LoopBody(buildPredicatedAbsLoop())}) {
    for (int Factor : {2, 3}) {
      const LoopBody U = unrollLoop(*Body, Factor);
      EXPECT_EQ(U.verify(), "") << U.Name;
      checkMemoryEquivalence(*Body, U, Factor, 24);
    }
    delete Body;
  }
}

TEST(Unroll, UnrolledLoopsScheduleAndValidate) {
  for (int Factor : {2, 3}) {
    const LoopBody U = unrollLoop(buildSampleLoop(), Factor);
    const DepGraph Graph(U, machine());
    const Schedule Sched = scheduleLoop(Graph);
    ASSERT_TRUE(Sched.Success) << U.Name;
    EXPECT_EQ(validateSchedule(Graph, Sched), "") << U.Name;
  }
}

TEST(Unroll, PipelinedExecutionOfUnrolledLoop) {
  const LoopBody Body = buildSampleLoop();
  const LoopBody U2 = unrollLoop(Body, 2);
  const Schedule Sched = scheduleLoop(U2, machine());
  ASSERT_TRUE(Sched.Success);
  const ExecutionResult Ref = runReference(Body, 30);
  ExecutionResult Pipe = runPipelined(U2, Sched, 15);
  ASSERT_EQ(Pipe.Error, "");
  ExecutionResult AA = Ref;
  AA.LiveOuts.clear();
  Pipe.LiveOuts.clear();
  EXPECT_EQ(compareExecutions(AA, Pipe), "");
}

TEST(Unroll, FractionalMIIRecoversThroughput) {
  // x(i) = a*x(i-2) + b: the recurrence circuit has latency 3 (fmul 2 +
  // fadd 1) over omega 2 — exact minimum II is 3/2, but without unrolling
  // the compiler must settle for ceil(3/2) = 2 (Section 3.1).
  LoopBody Body;
  ASSERT_EQ(compileLoop("param a = 0.5\nparam b = 1\n"
                        "loop i = 3, n\n  x[i] = a*x[i-2] + b\nend\n",
                        "frac", Body),
            "");
  const DepGraph Graph(Body, machine());
  const MIIBounds Bounds = computeMII(Graph);
  EXPECT_EQ(Bounds.RecMII, 2);

  const Schedule Plain = scheduleLoop(Graph);
  ASSERT_TRUE(Plain.Success);
  EXPECT_EQ(Plain.II, 2); // 2 cycles per source iteration

  const LoopBody U2 = unrollLoop(Body, 2);
  const DepGraph GraphU(U2, machine());
  const MIIBounds BoundsU = computeMII(GraphU);
  EXPECT_EQ(BoundsU.RecMII, 3); // 3 cycles per TWO source iterations
  const Schedule Unrolled = scheduleLoop(GraphU);
  ASSERT_TRUE(Unrolled.Success);
  EXPECT_LT(static_cast<double>(Unrolled.II) / 2,
            static_cast<double>(Plain.II))
      << "unrolling must beat the integral-II bound";

  // And the unrolled schedule still computes the right values.
  checkMemoryEquivalence(Body, U2, 2, 24);
}

TEST(Unroll, SeedsRetargetCorrectly) {
  // The dot product's accumulator seeds 0; unrolled copies must chain the
  // partial sums correctly from the very first iteration.
  const LoopBody Body = buildDotLoop();
  const LoopBody U3 = unrollLoop(Body, 3);
  const ExecutionResult A = runReference(Body, 9);
  const ExecutionResult B = runReference(U3, 3);
  ASSERT_EQ(B.Error, "");
  // The live-out of copy 2 must equal the source accumulator after 9
  // iterations.
  ASSERT_EQ(A.LiveOuts.size(), 1u);
  ASSERT_EQ(B.LiveOuts.size(), 1u);
  EXPECT_DOUBLE_EQ(A.LiveOuts.begin()->second, B.LiveOuts.begin()->second);
}

class UnrollProperty : public ::testing::TestWithParam<int> {};

TEST_P(UnrollProperty, RandomLoopsUnrollCorrectly) {
  RandomLoopConfig Config;
  Config.TargetOps = 18;
  const LoopBody Body =
      generateRandomLoop(static_cast<uint64_t>(GetParam()) + 3300, Config);
  for (int Factor : {2, 3}) {
    const LoopBody U = unrollLoop(Body, Factor);
    ASSERT_EQ(U.verify(), "") << Body.Source;
    checkMemoryEquivalence(Body, U, Factor, 24);

    const DepGraph Graph(U, machine());
    const Schedule Sched = scheduleLoop(Graph);
    if (Sched.Success) {
      EXPECT_EQ(validateSchedule(Graph, Sched), "") << Body.Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnrollProperty, ::testing::Range(1, 31));
