//===----------------------------------------------------------------------===//
///
/// \file
/// Property harness for irregular loops (while-exits, may-alias memory
/// arcs) and the conservative/speculative scheduling split:
///
///  - over the hand-written kernels and 200 seeded irregular loops, the
///    speculative II never exceeds the conservative II, both schedules are
///    validator-clean, the conservative schedule reproduces the reference
///    trace on every generated trace, and the speculative schedule does on
///    every trace where its assumptions held;
///  - the sweep report is byte-identical across worker counts;
///  - while-exit execution semantics, including a loop where dropping the
///    control fence makes misspeculated stores observable;
///  - the random-loop source generator is pinned (cross-platform
///    reproducibility of the xorshift-only stream).
///
//===----------------------------------------------------------------------===//

#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "frontend/LoopCompiler.h"
#include "ir/DepGraph.h"
#include "spec/SpecOracle.h"
#include "spec/Speculation.h"
#include "support/Crc32.h"
#include "support/Rng.h"
#include "vliwsim/Replay.h"
#include "workloads/RandomLoop.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace lsms;

namespace {

/// A second deterministic memory image (away from zero, so divides stay
/// finite) — the trace properties must hold for any initial memory, not
/// just the default image.
double altMemoryInit(int Array, long Index) {
  return 1.5 + 0.25 * static_cast<double>((Array * 7 + Index * 13) % 11);
}

struct LoweredPair {
  Lowering Cons;
  Lowering Spec;
  Schedule ConsS;
  Schedule SpecS;
  bool AdoptedCons = false;
};

/// Lowers both ways, schedules both with the slack heuristic, and applies
/// the sweep's adoption rule (the conservative schedule is legal for the
/// speculative body because its arcs are a superset).
LoweredPair scheduleBoth(const LoopBody &Body, const MachineModel &Machine) {
  LoweredPair P;
  P.Cons = lowerConservative(Body);
  P.Spec = lowerSpeculative(Body);
  const DepGraph ConsG(P.Cons.Body, Machine);
  const DepGraph SpecG(P.Spec.Body, Machine);
  P.ConsS = scheduleLoop(ConsG, SchedulerOptions::slack());
  P.SpecS = scheduleLoop(SpecG, SchedulerOptions::slack());
  if (P.ConsS.Success && (!P.SpecS.Success || P.SpecS.II > P.ConsS.II)) {
    P.SpecS = P.ConsS;
    P.AdoptedCons = true;
  }
  return P;
}

/// The shared per-loop property: spec II <= cons II, both validator-clean,
/// conservative trace-correct on every (init, window) combination, and
/// speculative trace-correct whenever every assumption held.
void checkIrregularProperties(const LoopBody &Body) {
  const MachineModel Machine = MachineModel::cydra5();
  SCOPED_TRACE(Body.Name);

  const LoweredPair P = scheduleBoth(Body, Machine);

  // Arc accounting: the speculative arcs are exactly the conservative
  // arcs minus the dropped ones.
  EXPECT_EQ(P.Cons.Body.MemDeps.size(),
            P.Spec.Body.MemDeps.size() + static_cast<size_t>(P.Spec.DroppedArcs));
  EXPECT_EQ(P.Cons.DroppedArcs, 0);

  ASSERT_TRUE(P.ConsS.Success) << "conservative schedule failed";
  ASSERT_TRUE(P.SpecS.Success);
  EXPECT_LE(P.SpecS.II, P.ConsS.II);

  const DepGraph ConsG(P.Cons.Body, Machine);
  const DepGraph SpecG(P.Spec.Body, Machine);
  EXPECT_EQ(validateSchedule(ConsG, P.ConsS), "");
  EXPECT_EQ(validateSchedule(SpecG, P.SpecS), "");

  const MemoryInit Inits[] = {defaultMemoryInit, altMemoryInit};
  for (const MemoryInit &Init : Inits) {
    for (const long Window : {32L, 64L}) {
      const ReplayResult Cons =
          replaySchedule(P.Cons.Body, P.ConsS, Window, {}, Init);
      EXPECT_EQ(Cons.Mismatch, "")
          << "conservative schedule diverged (window " << Window << ")";
      EXPECT_EQ(Cons.Pipelined.MisspeculatedStores, 0);

      const ReplayResult Spec = replaySchedule(P.Cons.Body, P.SpecS, Window,
                                               P.Spec.Assumptions, Init);
      if (Spec.AllHeld) {
        EXPECT_EQ(Spec.Mismatch, "")
            << "speculative schedule diverged with all assumptions held "
               "(window "
            << Window << ")";
      }
    }
  }
}

} // namespace

TEST(IrregularProperty, HandWrittenKernels) {
  // The kernels are regular (no may-alias arcs, no while-exits): the
  // speculative lowering must be a no-op and both IIs must coincide.
  for (const LoopBody &Body : buildKernelSuite()) {
    SCOPED_TRACE(Body.Name);
    const Lowering Spec = lowerSpeculative(Body);
    EXPECT_EQ(Spec.DroppedArcs, 0);
    EXPECT_TRUE(Spec.Assumptions.empty());
    checkIrregularProperties(Body);
  }
}

TEST(IrregularProperty, TwoHundredSeededLoops) {
  const std::vector<LoopBody> Suite =
      buildIrregularSuite(/*Count=*/200, /*MaxOps=*/48, /*Seed=*/0xA11A5);
  ASSERT_EQ(Suite.size(), 200u);
  int WhileLoops = 0, MayAlias = 0;
  for (const LoopBody &Body : Suite) {
    if (Body.isWhileLoop())
      ++WhileLoops;
    for (const MemDep &D : Body.MemDeps)
      if (D.Conf == ArcConfidence::MayAlias)
        ++MayAlias;
    checkIrregularProperties(Body);
  }
  // The generator must actually exercise the irregular features, or the
  // properties above are vacuous.
  EXPECT_GT(WhileLoops, 20);
  EXPECT_GT(MayAlias, 200);
}

TEST(IrregularReport, ByteIdenticalAcrossJobCounts) {
  IrregularOptions Options;
  Options.NumLoops = 10;
  Options.MaxOps = 32;
  std::string Reports[3];
  const int JobCounts[3] = {1, 2, 0}; // 0 = hardware default
  for (int K = 0; K < 3; ++K) {
    Options.Jobs = JobCounts[K];
    std::ostringstream OS;
    printIrregularReport(OS, runIrregularSweep(Options));
    Reports[K] = OS.str();
  }
  EXPECT_EQ(Reports[0], Reports[1]);
  EXPECT_EQ(Reports[0], Reports[2]);
  EXPECT_NE(Reports[0].find("conservative scheduled"), std::string::npos);
}

TEST(WhileExit, ReferenceStopsAtFirstFalseExit) {
  // s0 counts iterations; the exit condition is evaluated with the
  // end-of-iteration bindings, so iteration 5 (where s0 becomes 5) is the
  // last one executed (do-while semantics).
  LoopBody Body;
  ASSERT_EQ(compileLoop("param s0 = 0\n"
                        "loop i = 1, n while (s0 < 5)\n"
                        "s0 = s0 + 1\n"
                        "end\n",
                        "count_to_five", Body),
            "");
  ASSERT_TRUE(Body.isWhileLoop());
  const ExecutionResult R = runReference(Body, 64);
  ASSERT_EQ(R.Error, "");
  EXPECT_EQ(R.ActualTrip, 5);
  ASSERT_EQ(R.LiveOuts.size(), 1u);
  EXPECT_EQ(R.LiveOuts.begin()->second, 5.0);
}

TEST(WhileExit, RunsFullWindowWhenConditionHolds) {
  LoopBody Body;
  ASSERT_EQ(compileLoop("param s0 = 0\n"
                        "loop i = 1, n while (s0 < 100000)\n"
                        "s0 = s0 + 1\n"
                        "end\n",
                        "never_exits", Body),
            "");
  const ExecutionResult R = runReference(Body, 64);
  ASSERT_EQ(R.Error, "");
  EXPECT_EQ(R.ActualTrip, 64);
}

TEST(WhileExit, ObservableMisspeculation) {
  // The store feeds the exit chain through a kept may-alias flow arc
  // (store -> load -> add -> cmp, ~15 cycles), so the store is forced
  // early while the exit test resolves late. Conservatively the control
  // fence closes that chain into a recurrence (RecMII ~16); speculatively
  // the fence is dropped, II collapses, and iterations past the exit
  // commit stores before the exit resolves — the misspeculation the
  // replay harness must observe.
  LoopBody Body;
  ASSERT_EQ(compileLoop("param s0 = 0\n"
                        "loop i = 1, n while (s0 < 8)\n"
                        "b0 = in0[i] * 2\n"
                        "h0[b0] = in1[i]\n"
                        "s0 = s0 + h0[b0]\n"
                        "end\n",
                        "late_exit", Body),
            "");
  ASSERT_TRUE(Body.isWhileLoop());
  const MachineModel Machine = MachineModel::cydra5();
  const LoweredPair P = scheduleBoth(Body, Machine);
  ASSERT_TRUE(P.ConsS.Success);
  ASSERT_TRUE(P.SpecS.Success);

  // Control fences were present conservatively and dropped speculatively,
  // and dropping them bought a strictly smaller II.
  ASSERT_GT(P.Cons.ControlArcs, 0);
  ASSERT_GT(P.Spec.DroppedArcs, 0);
  ASSERT_FALSE(P.Spec.Assumptions.empty());
  EXPECT_LT(P.SpecS.II, P.ConsS.II);

  // The reference exits inside the window (memory values average 2, so
  // s0 crosses 8 after a handful of iterations).
  const ExecutionResult Ref = runReference(Body, 64);
  ASSERT_EQ(Ref.Error, "");
  ASSERT_GT(Ref.ActualTrip, 0);
  ASSERT_LT(Ref.ActualTrip, 64);

  // Conservative: fences honored, nothing misspeculates.
  const ReplayResult Cons = replaySchedule(P.Cons.Body, P.ConsS, 64, {});
  EXPECT_EQ(Cons.Mismatch, "");
  EXPECT_EQ(Cons.Pipelined.MisspeculatedStores, 0);

  // Speculative: the NoEarlyExit assumption is violated and the violation
  // is observable — stores of squashed iterations committed.
  const ReplayResult Spec =
      replaySchedule(P.Cons.Body, P.SpecS, 64, P.Spec.Assumptions);
  EXPECT_FALSE(Spec.AllHeld);
  bool SawEarlyExit = false;
  for (const AssumptionOutcome &O : Spec.Outcomes)
    if (!O.Held && O.Violations > 0)
      SawEarlyExit = true;
  EXPECT_TRUE(SawEarlyExit);
  EXPECT_GT(Spec.Pipelined.MisspeculatedStores, 0);
  EXPECT_NE(Spec.Mismatch, "");
}

TEST(RandomLoopPinning, Seed1FirstTenSources) {
  // Cross-platform reproducibility gate: the generator must draw from the
  // xorshift stream only (no std::uniform_* anywhere on the path), so the
  // emitted source is byte-identical on every platform. Regenerate the
  // constants intentionally by printing crc32 of each source.
  static const uint32_t Expected[10] = {
      0x8D015F5A, 0xA7AAE786, 0xBDB9D941, 0x4C88559B, 0x47D1ABB1,
      0xFCC0E93B, 0x57AE96AA, 0xC2AA5E05, 0xC6F9C7B6, 0x02771C53,
  };
  Rng R(1);
  for (int K = 0; K < 10; ++K) {
    const RandomLoopConfig Config = drawTable2Config(R);
    const std::string Source = generateRandomLoopSource(R, Config);
    EXPECT_EQ(crc32(Source.data(), Source.size()), Expected[K])
        << "loop " << K << " crc 0x" << std::hex
        << crc32(Source.data(), Source.size());
  }
}
