//===----------------------------------------------------------------------===//
/// \file Negative-case tests for validateSchedule: hand-crafted bodies with
/// fully controlled times, mutated one constraint at a time so the validator
/// must report exactly the injected defect (arc-latency violations,
/// double-booked functional-unit slots mod II, and omega-carried arcs right
/// at the II boundary).
//===----------------------------------------------------------------------===//

#include "core/FuAssignment.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "ir/DepGraph.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

/// v = fmul(x@1, c); x = fadd(v, c) — a two-operation recurrence whose
/// omega-1 arc x -> v is exactly tight when scheduled at II = lat(fmul) +
/// lat(fadd) with v at cycle 0 and x at cycle lat(fmul).
struct RecurrenceLoop {
  LoopBody Body;
  int VOp = -1; ///< the fmul
  int XOp = -1; ///< the fadd defining x

  RecurrenceLoop() {
    Body.Name = "validate-recurrence";
    IRBuilder B(Body);
    const int C = B.constant(1.0);
    const int X = B.declareValue(RegClass::RR, "x");
    const int V = B.emitValue(Opcode::FloatMul, {Use{X, 1}, Use{C, 0}}, "v");
    B.defineValue(X, Opcode::FloatAdd, {Use{V, 0}, Use{C, 0}});
    B.setSeeds(X, {1.0});
    B.markLiveOut(X);
    B.finish();
    VOp = Body.value(V).Def;
    XOp = Body.value(X).Def;
  }

  /// The tight hand schedule described above. Stop is placed at the maximum
  /// completion time so every op -> Stop arc is satisfied.
  Schedule tightSchedule(const DepGraph &Graph) const {
    const int LM = machine().latency(Opcode::FloatMul);
    Schedule Sched;
    Sched.Success = true;
    Sched.II = LM + machine().latency(Opcode::FloatAdd);
    Sched.Times.assign(static_cast<size_t>(Body.numOps()), 0);
    Sched.Times[static_cast<size_t>(VOp)] = 0;
    Sched.Times[static_cast<size_t>(XOp)] = LM;
    int StopTime = 0;
    for (const Operation &Op : Body.Ops)
      if (Op.Id != Body.stopOp())
        StopTime = std::max(StopTime,
                            Sched.Times[static_cast<size_t>(Op.Id)] +
                                machine().latency(Op.Opc));
    Sched.Times[static_cast<size_t>(Body.stopOp())] = StopTime;
    EXPECT_EQ(validateSchedule(Graph, Sched), "")
        << "the tight base schedule must be legal";
    return Sched;
  }
};

} // namespace

TEST(Validate, TightOmegaCarriedArcAtBoundaryPasses) {
  const RecurrenceLoop Loop;
  const DepGraph Graph(Loop.Body, machine());
  const Schedule Sched = Loop.tightSchedule(Graph);
  // The carried arc x -> v holds with zero slack: t(v) == t(x) + lat(fadd)
  // - 1*II exactly.
  const int LA = machine().latency(Opcode::FloatAdd);
  EXPECT_EQ(Sched.Times[static_cast<size_t>(Loop.VOp)],
            Sched.Times[static_cast<size_t>(Loop.XOp)] + LA - Sched.II);
}

TEST(Validate, OmegaCarriedArcViolatedOnePastBoundary) {
  const RecurrenceLoop Loop;
  const DepGraph Graph(Loop.Body, machine());
  Schedule Sched = Loop.tightSchedule(Graph);
  // Pushing x one cycle later (and Stop with it, so omega-0 arcs stay
  // satisfied) breaks only the carried arc x -> v.
  Sched.Times[static_cast<size_t>(Loop.XOp)] += 1;
  Sched.Times[static_cast<size_t>(Loop.Body.stopOp())] += 1;
  const std::string Err = validateSchedule(Graph, Sched);
  EXPECT_NE(Err, "");
  EXPECT_NE(Err.find("violated"), std::string::npos) << Err;
  EXPECT_NE(Err.find("omega=1"), std::string::npos) << Err;
}

TEST(Validate, OmegaCarriedArcViolatedByShrunkII) {
  const RecurrenceLoop Loop;
  const DepGraph Graph(Loop.Body, machine());
  Schedule Sched = Loop.tightSchedule(Graph);
  // Claiming a smaller II tightens carried arcs by omega cycles each while
  // leaving every omega-0 arc untouched; the tight recurrence must now fail.
  Sched.II -= 1;
  ASSERT_GT(Sched.II, 0);
  const std::string Err = validateSchedule(Graph, Sched);
  EXPECT_NE(Err, "");
  EXPECT_NE(Err.find("omega=1"), std::string::npos) << Err;
}

TEST(Validate, ArcLatencyViolationReported) {
  const RecurrenceLoop Loop;
  const DepGraph Graph(Loop.Body, machine());
  Schedule Sched = Loop.tightSchedule(Graph);
  // x issued one cycle before its operand v finishes: violates v -> x
  // (omega 0) and nothing else.
  Sched.Times[static_cast<size_t>(Loop.XOp)] -= 1;
  ASSERT_GE(Sched.Times[static_cast<size_t>(Loop.XOp)], 0);
  const std::string Err = validateSchedule(Graph, Sched);
  EXPECT_NE(Err, "");
  EXPECT_NE(Err.find("violated"), std::string::npos) << Err;
  EXPECT_NE(Err.find("omega=0"), std::string::npos) << Err;
}

TEST(Validate, DoubleBookedFuSlotModII) {
  // More loads than memory ports: two of them must share a port instance.
  // Moving one onto the other's cycle double-books that instance's modulo
  // slot without disturbing any dependence (all loads read the same address
  // value, and Stop is bounded by the latest load already).
  LoopBody Body;
  Body.Name = "validate-ports";
  IRBuilder B(Body);
  const int Arr = B.newArray("arr");
  const int Addr = B.addressStream("a", 0.0);
  const int NumLoads = machine().unitCount(FuKind::MemoryPort) + 1;
  std::vector<int> LoadOps;
  for (int I = 0; I < NumLoads; ++I) {
    const int L =
        B.emitLoad(Arr, 0, Use{Addr, 0}, "l" + std::to_string(I));
    B.markLiveOut(L);
    LoadOps.push_back(Body.value(L).Def);
  }
  B.finish();

  const DepGraph Graph(Body, machine());
  Schedule Sched = scheduleLoop(Graph);
  ASSERT_TRUE(Sched.Success);
  ASSERT_EQ(validateSchedule(Graph, Sched), "");

  const std::vector<int> FuInstance = assignFunctionalUnits(Body, machine());
  int First = -1, Second = -1;
  for (size_t I = 0; I < LoadOps.size() && Second < 0; ++I)
    for (size_t J = I + 1; J < LoadOps.size() && Second < 0; ++J)
      if (FuInstance[static_cast<size_t>(LoadOps[I])] ==
          FuInstance[static_cast<size_t>(LoadOps[J])]) {
        First = LoadOps[I];
        Second = LoadOps[J];
      }
  ASSERT_GE(First, 0) << "pigeonhole: some pair must share a port";

  Sched.Times[static_cast<size_t>(Second)] =
      Sched.Times[static_cast<size_t>(First)];
  const std::string Err = validateSchedule(Graph, Sched);
  EXPECT_NE(Err, "");
  EXPECT_NE(Err.find("resource conflict"), std::string::npos) << Err;
}

TEST(Validate, StructuralDefectsReported) {
  const RecurrenceLoop Loop;
  const DepGraph Graph(Loop.Body, machine());
  const Schedule Base = Loop.tightSchedule(Graph);

  Schedule Unsuccessful = Base;
  Unsuccessful.Success = false;
  EXPECT_NE(validateSchedule(Graph, Unsuccessful), "");

  Schedule BadII = Base;
  BadII.II = 0;
  EXPECT_NE(validateSchedule(Graph, BadII), "");

  Schedule Short = Base;
  Short.Times.pop_back();
  EXPECT_NE(validateSchedule(Graph, Short), "");

  Schedule MovedStart = Base;
  for (int &T : MovedStart.Times)
    T += 1;
  EXPECT_NE(validateSchedule(Graph, MovedStart), "");

  Schedule Unplaced = Base;
  Unplaced.Times[static_cast<size_t>(Loop.VOp)] = -1;
  EXPECT_NE(validateSchedule(Graph, Unplaced), "");
}
