//===----------------------------------------------------------------------===//
/// \file End-to-end functional validation: the pipelined execution of every
/// schedule must produce bit-identical memory and live-outs to the
/// sequential reference interpreter.
//===----------------------------------------------------------------------===//

#include "core/ModuloScheduler.h"
#include "frontend/LoopCompiler.h"
#include "vliwsim/Execution.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

void checkEquivalence(const LoopBody &Body, long Iterations = 40) {
  const DepGraph Graph(Body, machine());
  const Schedule Sched = scheduleLoop(Graph);
  ASSERT_TRUE(Sched.Success) << Body.Name;

  const ExecutionResult Ref = runReference(Body, Iterations);
  ASSERT_EQ(Ref.Error, "") << Body.Name;
  const ExecutionResult Pipe = runPipelined(Body, Sched, Iterations);
  ASSERT_EQ(Pipe.Error, "") << Body.Name;
  EXPECT_EQ(compareExecutions(Ref, Pipe), "") << Body.Name;
}

LoopBody compileOrDie(const std::string &Src, const std::string &Name) {
  LoopBody Body;
  const std::string Err = compileLoop(Src, Name, Body);
  EXPECT_EQ(Err, "") << Src;
  return Body;
}

} // namespace

TEST(Reference, DotProductComputesExpectedValue) {
  const LoopBody Body = buildDotLoop();
  const ExecutionResult R = runReference(Body, 10);
  ASSERT_EQ(R.Error, "");
  // s = sum of x(i)*y(i) over 10 iterations with the default memory init.
  double Expected = 0;
  for (long I = 1; I <= 10; ++I)
    Expected += defaultMemoryInit(0, I) * defaultMemoryInit(1, I);
  int S = -1;
  for (const Value &V : Body.Values)
    if (V.Name == "s")
      S = V.Id;
  ASSERT_GE(S, 0);
  ASSERT_TRUE(R.LiveOuts.count(S));
  EXPECT_DOUBLE_EQ(R.LiveOuts.at(S), Expected);
}

TEST(Reference, SampleLoopRecurrenceValues) {
  // x(i) = x(i-1) + y(i-2) with seeds x(1)=1, x(2)=2, y(1)=10, y(2)=20.
  const LoopBody Body = buildSampleLoop();
  const ExecutionResult R = runReference(Body, 3);
  ASSERT_EQ(R.Error, "");
  // i=3: x(3) = x(2)+y(1) = 2+10 = 12; y(3) = y(2)+x(1) = 20+1 = 21.
  // i=4: x(4) = x(3)+y(2) = 12+20 = 32; y(4) = y(3)+x(2) = 21+2 = 23.
  // i=5: x(5) = x(4)+y(3) = 32+21 = 53; y(5) = y(4)+x(3) = 23+12 = 35.
  ASSERT_EQ(R.Arrays.size(), 2u);
  EXPECT_DOUBLE_EQ(R.Arrays[0].at(3), 12);
  EXPECT_DOUBLE_EQ(R.Arrays[0].at(4), 32);
  EXPECT_DOUBLE_EQ(R.Arrays[0].at(5), 53);
  EXPECT_DOUBLE_EQ(R.Arrays[1].at(3), 21);
  EXPECT_DOUBLE_EQ(R.Arrays[1].at(4), 23);
  EXPECT_DOUBLE_EQ(R.Arrays[1].at(5), 35);
}

TEST(Reference, PredicatedAbs) {
  LoopBody Body = buildPredicatedAbsLoop();
  const auto Init = [](int Array, long Index) {
    (void)Array;
    return Index % 2 == 0 ? -2.0 : 3.0;
  };
  const ExecutionResult R = runReference(Body, 6, Init);
  ASSERT_EQ(R.Error, "");
  for (long I = 1; I <= 6; ++I)
    EXPECT_DOUBLE_EQ(R.Arrays[1].at(I), I % 2 == 0 ? 2.0 : 3.0) << I;
}

TEST(PipelinedExecution, MatchesReferenceOnHandKernels) {
  checkEquivalence(buildSampleLoop());
  checkEquivalence(buildDaxpyLoop());
  checkEquivalence(buildDotLoop());
  checkEquivalence(buildLinearRecurrenceLoop());
  checkEquivalence(buildPredicatedAbsLoop());
  checkEquivalence(buildDivideLoop());
}

TEST(PipelinedExecution, MatchesReferenceUnderCydromeScheduler) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Sched = scheduleLoop(Graph, SchedulerOptions::cydrome());
  ASSERT_TRUE(Sched.Success);
  const ExecutionResult Ref = runReference(Body, 25);
  const ExecutionResult Pipe = runPipelined(Body, Sched, 25);
  EXPECT_EQ(compareExecutions(Ref, Pipe), "");
}

TEST(PipelinedExecution, DslLoopsMatchReference) {
  const char *Sources[] = {
      // Livermore-like hydro fragment.
      "param q = 0.5\nparam r = 0.25\nparam t = 2\n"
      "loop i = 1, n\n  x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])\nend\n",
      // First-order recurrence.
      "loop i = 2, n\n  x[i] = x[i-1]*0.5 + y[i]\nend\n",
      // Conditional with else and scalar reduction.
      "param s = 0\n"
      "loop i = 1, n\n"
      "  if (x[i] > 2) then\n    s = s + x[i]\n    y[i] = 1\n"
      "  else\n    y[i] = 0 - 1\n  end\nend\n",
      // Read-before-write anti-dependence.
      "loop i = 1, n\n  y[i] = x[i] + 1\n  x[i] = y[i] * 0.5\nend\n",
      // Stencil with cross-iteration elimination and genuine loads.
      "loop i = 3, n\n  a[i] = a[i-1] + a[i-2] + b[i]\nend\n",
      // sqrt / divide on the non-pipelined divider.
      "loop i = 1, n\n  y[i] = sqrt(x[i]) / (x[i] + 2)\nend\n",
      // Induction variable used as data.
      "loop i = 1, n\n  x[i] = i * y[i]\nend\n",
  };
  int Index = 0;
  for (const char *Src : Sources) {
    const LoopBody Body =
        compileOrDie(Src, "dsl" + std::to_string(Index++));
    checkEquivalence(Body);
  }
}

TEST(PipelinedExecution, LongPipelineManyIterations) {
  // Deep software pipeline (load latency 13 at II 1-2): many iterations in
  // flight at once; equivalence must still hold.
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  y[i] = x[i] * 2 + 1\nend\n", "deep");
  checkEquivalence(Body, 200);
}

TEST(PipelinedExecution, FailedScheduleReportsError) {
  Schedule Bad;
  const LoopBody Body = buildDaxpyLoop();
  const ExecutionResult R = runPipelined(Body, Bad, 4);
  EXPECT_NE(R.Error, "");
}

TEST(CompareExecutions, DetectsDifferences) {
  ExecutionResult A, B;
  A.Arrays.resize(1);
  B.Arrays.resize(1);
  A.Arrays[0][3] = 1.0;
  B.Arrays[0][3] = 2.0;
  EXPECT_NE(compareExecutions(A, B), "");
  B.Arrays[0][3] = 1.0;
  EXPECT_EQ(compareExecutions(A, B), "");
  B.Arrays[0][4] = 9.0;
  EXPECT_NE(compareExecutions(A, B), "");
}

TEST(CompareExecutions, NanEqualsNan) {
  ExecutionResult A, B;
  A.Arrays.resize(1);
  B.Arrays.resize(1);
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  A.Arrays[0][0] = NaN;
  B.Arrays[0][0] = NaN;
  EXPECT_EQ(compareExecutions(A, B), "");
}
