//===----------------------------------------------------------------------===//
/// \file Tests for kernel-only code generation and the machine-level
/// simulator: the emitted VLIW code, run on concrete rotating register
/// files with stage predicates, must reproduce the sequential reference's
/// memory image and live-outs exactly.
//===----------------------------------------------------------------------===//

#include "codegen/KernelCodeGen.h"
#include "core/ModuloScheduler.h"
#include "frontend/LoopCompiler.h"
#include "vliwsim/MachineSim.h"
#include "workloads/Kernels.h"
#include "workloads/RandomLoop.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

void checkMachineEquivalence(const LoopBody &Body, long Iterations = 30) {
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success) << Body.Name;

  KernelCode Code;
  ASSERT_EQ(generateKernelCode(Body, Sched, Code), "") << Body.Name;
  EXPECT_EQ(Code.II, Sched.II);
  EXPECT_GE(Code.StageCount, 1);

  const ExecutionResult Ref = runReference(Body, Iterations);
  ASSERT_EQ(Ref.Error, "") << Body.Name;
  ExecutionResult Mach = runKernelCode(Body, Code, Iterations);
  ASSERT_EQ(Mach.Error, "") << Body.Name;

  // Dead live-outs have no register to read back; drop them from the
  // reference side before comparing.
  ExecutionResult RefAligned = Ref;
  for (auto It = RefAligned.LiveOuts.begin();
       It != RefAligned.LiveOuts.end();) {
    if (!Mach.LiveOuts.count(It->first))
      It = RefAligned.LiveOuts.erase(It);
    else
      ++It;
  }
  EXPECT_EQ(compareExecutions(RefAligned, Mach), "") << Body.Name;
}

} // namespace

TEST(KernelCodeGen, SampleLoopCodeShape) {
  const LoopBody Body = buildSampleLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  KernelCode Code;
  ASSERT_EQ(generateKernelCode(Body, Sched, Code), "");
  EXPECT_EQ(Code.II, 2);
  // All machine ops are slotted, one brtop included.
  EXPECT_EQ(Code.Ops.size(), static_cast<size_t>(Body.numMachineOps()));
  // Each op's cycle is within the kernel.
  for (const KernelOp &Op : Code.Ops) {
    EXPECT_GE(Op.Cycle, 0);
    EXPECT_LT(Op.Cycle, Code.II);
    EXPECT_GE(Op.Stage, 0);
    EXPECT_LT(Op.Stage, Code.StageCount);
  }
}

TEST(KernelCodeGen, ListingPrints) {
  const LoopBody Body = buildSampleLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  KernelCode Code;
  ASSERT_EQ(generateKernelCode(Body, Sched, Code), "");
  std::ostringstream OS;
  Code.print(OS, Body);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("kernel II=2"), std::string::npos);
  EXPECT_NE(Out.find("fadd"), std::string::npos);
  EXPECT_NE(Out.find("rr"), std::string::npos);
}

TEST(KernelCodeGen, FailsOnFailedSchedule) {
  const LoopBody Body = buildSampleLoop();
  Schedule Bad;
  KernelCode Code;
  EXPECT_NE(generateKernelCode(Body, Bad, Code), "");
}

TEST(MachineSim, SampleLoopMatchesReference) {
  checkMachineEquivalence(buildSampleLoop(), 40);
}

TEST(MachineSim, AllHandKernelsMatchReference) {
  checkMachineEquivalence(buildDaxpyLoop());
  checkMachineEquivalence(buildDotLoop());
  checkMachineEquivalence(buildLinearRecurrenceLoop());
  checkMachineEquivalence(buildPredicatedAbsLoop());
  checkMachineEquivalence(buildDivideLoop(), 12);
}

TEST(MachineSim, SuiteKernelsMatchReference) {
  for (const LoopBody &Body : buildKernelSuite())
    checkMachineEquivalence(Body, 25);
}

TEST(MachineSim, DeepPipelineLongRun) {
  LoopBody Body;
  ASSERT_EQ(compileLoop("loop i = 1, n\n  y[i] = x[i]*2 + 1\nend\n", "deep",
                        Body),
            "");
  checkMachineEquivalence(Body, 150);
}

TEST(MachineSim, SingleIteration) {
  // N smaller than the stage count: most kernel iterations run fully
  // squashed by stage predicates.
  checkMachineEquivalence(buildDaxpyLoop(), 1);
}

class MachineSimProperty : public ::testing::TestWithParam<int> {};

TEST_P(MachineSimProperty, RandomLoopsMatchReference) {
  RandomLoopConfig Config;
  Config.TargetOps = 20 + (GetParam() % 5) * 10;
  const LoopBody Body =
      generateRandomLoop(static_cast<uint64_t>(GetParam()) + 7700, Config);
  const Schedule Sched = scheduleLoop(Body, machine());
  if (!Sched.Success)
    return;
  checkMachineEquivalence(Body, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineSimProperty, ::testing::Range(1, 41));
