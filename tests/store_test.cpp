//===----------------------------------------------------------------------===//
/// Tests for the persistent content-addressed schedule store
/// (store/ScheduleStore.h): round trips across close/reopen, crash-safe
/// recovery (torn-tail truncation at EVERY byte offset of a trailing
/// record), CRC and magic corruption rejection, supersede/dedup
/// accounting, and compaction preserving exactly the live records.
//===----------------------------------------------------------------------===//

#include "store/ScheduleStore.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace lsms;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "lsms_store_" + Name + ".log";
}

CacheKey makeKey(uint64_t I) {
  CacheKey K;
  K.Hi = 0x1111000000000000ULL + I;
  K.Lo = 0x2222000000000000ULL ^ (I * 0x9e3779b97f4a7c15ULL);
  K.Aux = 0x3333000000000000ULL + I * 7;
  return K;
}

CachedSchedule makeSched(uint64_t I) {
  CachedSchedule S;
  S.Success = true;
  S.II = static_cast<int>(3 + I % 17);
  S.MII = static_cast<int>(2 + I % 13);
  S.ResMII = static_cast<int>(1 + I % 7);
  S.RecMII = static_cast<int>(1 + I % 5);
  S.MaxLive = static_cast<long>(10 + I % 23);
  S.MaxLiveProven = I % 2 == 0;
  S.Certificate =
      S.MaxLiveProven ? MaxLiveCertificate::MinAvgMet : MaxLiveCertificate::None;
  S.Status = I % 3 == 0 ? ExactStatus::Optimal : ExactStatus::Feasible;
  S.Times.clear();
  for (uint64_t T = 0; T < I % 6; ++T)
    S.Times.push_back(static_cast<int>(I * 31 + T));
  return S;
}

void expectEqual(const CachedSchedule &A, const CachedSchedule &B) {
  EXPECT_EQ(A.Success, B.Success);
  EXPECT_EQ(A.II, B.II);
  EXPECT_EQ(A.MII, B.MII);
  EXPECT_EQ(A.ResMII, B.ResMII);
  EXPECT_EQ(A.RecMII, B.RecMII);
  EXPECT_EQ(A.MaxLive, B.MaxLive);
  EXPECT_EQ(A.MaxLiveProven, B.MaxLiveProven);
  EXPECT_EQ(A.Certificate, B.Certificate);
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.Times, B.Times);
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

TEST(ScheduleStore, ClosedStoreIsInert) {
  ScheduleStore Store;
  EXPECT_FALSE(Store.isOpen());
  CachedSchedule Out;
  EXPECT_FALSE(Store.get(makeKey(1), Out));
  EXPECT_FALSE(Store.put(makeKey(1), makeSched(1)));
  EXPECT_EQ(Store.stats().LiveKeys, 0);
}

TEST(ScheduleStore, RoundTripAcrossReopen) {
  const std::string Path = tempPath("roundtrip");
  std::remove(Path.c_str());
  constexpr uint64_t N = 20;
  {
    ScheduleStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Path, Err)) << Err;
    for (uint64_t I = 0; I < N; ++I)
      ASSERT_TRUE(Store.put(makeKey(I), makeSched(I)));
    EXPECT_EQ(Store.stats().Appends, static_cast<long>(N));
    EXPECT_EQ(Store.stats().LiveKeys, static_cast<long>(N));
  }
  ScheduleStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Path, Err)) << Err;
  EXPECT_EQ(Store.stats().RecoveredRecords, static_cast<long>(N));
  EXPECT_EQ(Store.stats().LiveKeys, static_cast<long>(N));
  EXPECT_EQ(Store.stats().TruncatedBytes, 0);
  for (uint64_t I = 0; I < N; ++I) {
    CachedSchedule Out;
    ASSERT_TRUE(Store.get(makeKey(I), Out)) << "key " << I;
    expectEqual(Out, makeSched(I));
  }
  CachedSchedule Out;
  EXPECT_FALSE(Store.get(makeKey(N + 1), Out));
  EXPECT_EQ(Store.stats().Hits, static_cast<long>(N));
  EXPECT_EQ(Store.stats().Misses, 1);
  std::remove(Path.c_str());
}

TEST(ScheduleStore, IdenticalPutIsDeduplicated) {
  const std::string Path = tempPath("dedup");
  std::remove(Path.c_str());
  ScheduleStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Path, Err)) << Err;
  ASSERT_TRUE(Store.put(makeKey(1), makeSched(1)));
  const long Bytes = Store.stats().LogBytes;
  ASSERT_TRUE(Store.put(makeKey(1), makeSched(1))); // identical: no append
  EXPECT_EQ(Store.stats().Appends, 1);
  EXPECT_EQ(Store.stats().LogBytes, Bytes);
  EXPECT_EQ(Store.stats().DeadBytes, 0);
  std::remove(Path.c_str());
}

TEST(ScheduleStore, SupersedingPutWinsAcrossReopen) {
  const std::string Path = tempPath("supersede");
  std::remove(Path.c_str());
  {
    ScheduleStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Path, Err)) << Err;
    ASSERT_TRUE(Store.put(makeKey(1), makeSched(1)));
    ASSERT_TRUE(Store.put(makeKey(1), makeSched(2))); // supersedes
    EXPECT_EQ(Store.stats().LiveKeys, 1);
    EXPECT_GT(Store.stats().DeadBytes, 0);
    CachedSchedule Out;
    ASSERT_TRUE(Store.get(makeKey(1), Out));
    expectEqual(Out, makeSched(2));
  }
  ScheduleStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Path, Err)) << Err;
  EXPECT_EQ(Store.stats().RecoveredRecords, 2); // both records replayed
  EXPECT_EQ(Store.stats().LiveKeys, 1);
  CachedSchedule Out;
  ASSERT_TRUE(Store.get(makeKey(1), Out));
  expectEqual(Out, makeSched(2));
  std::remove(Path.c_str());
}

TEST(ScheduleStore, TornTailTruncatedAtEveryByteOffset) {
  const std::string Path = tempPath("torntail");
  std::remove(Path.c_str());
  // Two intact records, then every proper prefix of a third.
  {
    ScheduleStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Path, Err)) << Err;
    ASSERT_TRUE(Store.put(makeKey(1), makeSched(1)));
    ASSERT_TRUE(Store.put(makeKey(2), makeSched(2)));
  }
  const std::string Intact = readFile(Path);
  std::string Third;
  appendStoreRecord(Third, makeKey(3), makeSched(3));
  ASSERT_GT(Third.size(), ScheduleStore::RecordHeaderBytes);

  for (size_t Torn = 1; Torn < Third.size(); ++Torn) {
    writeFile(Path, Intact + Third.substr(0, Torn));
    ScheduleStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Path, Err)) << Err << " torn=" << Torn;
    EXPECT_EQ(Store.stats().RecoveredRecords, 2) << "torn=" << Torn;
    EXPECT_EQ(Store.stats().LiveKeys, 2) << "torn=" << Torn;
    EXPECT_EQ(Store.stats().TruncatedBytes, static_cast<long>(Torn))
        << "torn=" << Torn;
    // One record start in the tail — whether its magic made it to disk
    // (torn >= 4) or the header was cut mid-write (floor of one).
    EXPECT_EQ(Store.stats().TornRecords, 1) << "torn=" << Torn;
    CachedSchedule Out;
    EXPECT_TRUE(Store.get(makeKey(1), Out));
    EXPECT_TRUE(Store.get(makeKey(2), Out));
    EXPECT_FALSE(Store.get(makeKey(3), Out));
    Store.close();
    // The torn bytes are physically gone: a second recovery is clean.
    EXPECT_EQ(readFile(Path).size(), Intact.size()) << "torn=" << Torn;
  }

  // The full third record, by contrast, recovers.
  writeFile(Path, Intact + Third);
  ScheduleStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Path, Err)) << Err;
  EXPECT_EQ(Store.stats().RecoveredRecords, 3);
  EXPECT_EQ(Store.stats().TruncatedBytes, 0);
  EXPECT_EQ(Store.stats().TornRecords, 0);
  CachedSchedule Out;
  ASSERT_TRUE(Store.get(makeKey(3), Out));
  expectEqual(Out, makeSched(3));
  std::remove(Path.c_str());
}

TEST(ScheduleStore, CrcCorruptionCutsOffRecovery) {
  const std::string Path = tempPath("crc");
  std::remove(Path.c_str());
  {
    ScheduleStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Path, Err)) << Err;
    ASSERT_TRUE(Store.put(makeKey(1), makeSched(1)));
    ASSERT_TRUE(Store.put(makeKey(2), makeSched(2)));
  }
  std::string First;
  appendStoreRecord(First, makeKey(1), makeSched(1));
  const std::string Intact = readFile(Path);

  // Flip a payload byte of record 1: recovery must reject record 1 AND
  // everything after it (record boundaries are untrustworthy from there).
  std::string Corrupt = Intact;
  Corrupt[ScheduleStore::RecordHeaderBytes + 3] ^= 0x40;
  writeFile(Path, Corrupt);
  {
    ScheduleStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Path, Err)) << Err;
    EXPECT_EQ(Store.stats().RecoveredRecords, 0);
    EXPECT_EQ(Store.stats().LiveKeys, 0);
    EXPECT_EQ(Store.stats().TruncatedBytes,
              static_cast<long>(Intact.size()));
    // Both records' magics sit in the dropped tail.
    EXPECT_EQ(Store.stats().TornRecords, 2);
  }

  // Flip a payload byte of record 2 only: record 1 survives.
  Corrupt = Intact;
  Corrupt[First.size() + ScheduleStore::RecordHeaderBytes + 3] ^= 0x40;
  writeFile(Path, Corrupt);
  {
    ScheduleStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Path, Err)) << Err;
    EXPECT_EQ(Store.stats().RecoveredRecords, 1);
    EXPECT_EQ(Store.stats().LiveKeys, 1);
    CachedSchedule Out;
    EXPECT_TRUE(Store.get(makeKey(1), Out));
    EXPECT_FALSE(Store.get(makeKey(2), Out));
  }

  // A wrong magic likewise stops the scan.
  Corrupt = Intact;
  Corrupt[First.size()] ^= 0xFF;
  writeFile(Path, Corrupt);
  {
    ScheduleStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Path, Err)) << Err;
    EXPECT_EQ(Store.stats().RecoveredRecords, 1);
    EXPECT_EQ(Store.stats().LiveKeys, 1);
    // The flipped magic leaves no recognizable record start in the tail;
    // the count still floors at one torn record.
    EXPECT_EQ(Store.stats().TornRecords, 1);
  }
  std::remove(Path.c_str());
}

TEST(ScheduleStore, CompactionKeepsExactlyTheLiveRecords) {
  const std::string Path = tempPath("compact");
  std::remove(Path.c_str());
  constexpr uint64_t N = 50;
  ScheduleStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Path, Err)) << Err;
  for (uint64_t I = 0; I < N; ++I)
    ASSERT_TRUE(Store.put(makeKey(I), makeSched(I)));
  for (uint64_t I = 0; I < N; I += 2) // supersede every even key
    ASSERT_TRUE(Store.put(makeKey(I), makeSched(I + 100)));
  const long Before = Store.stats().LogBytes;
  ASSERT_GT(Store.stats().DeadBytes, 0);

  ASSERT_TRUE(Store.compact(Err)) << Err;
  EXPECT_EQ(Store.stats().Compactions, 1);
  EXPECT_EQ(Store.stats().DeadBytes, 0);
  EXPECT_LT(Store.stats().LogBytes, Before);
  EXPECT_EQ(Store.stats().LiveKeys, static_cast<long>(N));
  for (uint64_t I = 0; I < N; ++I) {
    CachedSchedule Out;
    ASSERT_TRUE(Store.get(makeKey(I), Out)) << "key " << I;
    expectEqual(Out, makeSched(I % 2 == 0 ? I + 100 : I));
  }
  Store.close();

  // The compacted log replays to the same live set.
  ScheduleStore Reopened;
  ASSERT_TRUE(Reopened.open(Path, Err)) << Err;
  EXPECT_EQ(Reopened.stats().RecoveredRecords, static_cast<long>(N));
  EXPECT_EQ(Reopened.stats().LiveKeys, static_cast<long>(N));
  for (uint64_t I = 0; I < N; ++I) {
    CachedSchedule Out;
    ASSERT_TRUE(Reopened.get(makeKey(I), Out));
    expectEqual(Out, makeSched(I % 2 == 0 ? I + 100 : I));
  }
  std::remove(Path.c_str());
}

TEST(ScheduleStore, AutoCompactionReclaimsDeadBytes) {
  const std::string Path = tempPath("autocompact");
  std::remove(Path.c_str());
  ScheduleStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Path, Err)) << Err;
  // Alternate two large values under one key until dead bytes dominate a
  // >64KB log; put() must then compact on its own.
  CachedSchedule A = makeSched(1), B = makeSched(2);
  A.Times.assign(2000, 7);
  B.Times.assign(2000, 9);
  for (int I = 0; I < 40; ++I)
    ASSERT_TRUE(Store.put(makeKey(1), I % 2 ? A : B));
  EXPECT_GE(Store.stats().Compactions, 1);
  EXPECT_EQ(Store.stats().LiveKeys, 1);
  CachedSchedule Out;
  ASSERT_TRUE(Store.get(makeKey(1), Out));
  expectEqual(Out, A); // I=39 odd: A was written last
  std::remove(Path.c_str());
}
