//===----------------------------------------------------------------------===//
/// \file Differential tests for the SCC-decomposed MinDist closure against
/// the dense Floyd-Warshall reference. The max-plus transitive closure is
/// unique, so compute() and computeDense() must agree entry for entry on
/// every graph and II — including below RecMII, where both must reject the
/// positive cycle. The sweeps deliberately reuse one matrix object across
/// ascending IIs per graph to exercise the cached-condensation refresh path
/// the schedulers' II retry loops rely on.
//===----------------------------------------------------------------------===//

#include "bounds/Bounds.h"
#include "graph/MinDist.h"
#include "ir/DepGraph.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

namespace lsms {
namespace {

/// Compares the cached-path closure against the dense reference for every
/// II in [max(1, MII-1), MII+3]. Starting below MII exercises return-value
/// parity on positive-cycle rejection; the shared \p Fast matrix across the
/// ascending IIs exercises the omega-only weight refresh.
void expectMatchesDense(const LoopBody &Body, const MachineModel &Machine) {
  const DepGraph Graph(Body, Machine);
  const MIIBounds Bounds = computeMII(Graph);
  MinDistMatrix Fast;
  for (int II = std::max(1, Bounds.MII - 1); II <= Bounds.MII + 3; ++II) {
    MinDistMatrix Dense;
    const bool FastOk = Fast.compute(Graph, II);
    const bool DenseOk = Dense.computeDense(Graph, II);
    ASSERT_EQ(FastOk, DenseOk)
        << Body.Name << " II=" << II << ": feasibility verdicts differ";
    if (!FastOk)
      continue;
    ASSERT_EQ(Fast.numOps(), Dense.numOps()) << Body.Name;
    for (int X = 0; X < Dense.numOps(); ++X)
      for (int Y = 0; Y < Dense.numOps(); ++Y)
        ASSERT_EQ(Fast.at(X, Y), Dense.at(X, Y))
            << Body.Name << " II=" << II << " MinDist(" << X << "," << Y
            << ")";
  }
}

TEST(MinDistSccTest, KernelSuiteMatchesDense) {
  const MachineModel Machine = MachineModel::cydra5();
  for (const LoopBody &Body : buildKernelSuite())
    expectMatchesDense(Body, Machine);
}

TEST(MinDistSccTest, RandomLoopsMatchDense) {
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite =
      buildOracleSuite(/*Count=*/200, /*MinOps=*/3, /*MaxOps=*/20,
                       /*Seed=*/0xD1FF, /*Jobs=*/1);
  ASSERT_EQ(Suite.size(), 200u);
  for (const LoopBody &Body : Suite)
    expectMatchesDense(Body, Machine);
}

TEST(MinDistSccTest, CacheSurvivesGraphSwitch) {
  // One matrix alternating between two different graphs must re-condense
  // rather than serve the stale structure.
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite =
      buildOracleSuite(/*Count=*/4, /*MinOps=*/4, /*MaxOps=*/16,
                       /*Seed=*/0xCAFE, /*Jobs=*/1);
  ASSERT_EQ(Suite.size(), 4u);
  std::vector<DepGraph> Graphs;
  Graphs.reserve(Suite.size());
  for (const LoopBody &Body : Suite)
    Graphs.emplace_back(Body, Machine);

  MinDistMatrix Fast;
  for (int Round = 0; Round < 2; ++Round) {
    for (const DepGraph &Graph : Graphs) {
      const int MII = computeMII(Graph).MII;
      MinDistMatrix Dense;
      const bool FastOk = Fast.compute(Graph, MII + Round);
      ASSERT_EQ(FastOk, Dense.computeDense(Graph, MII + Round));
      if (!FastOk)
        continue;
      for (int X = 0; X < Dense.numOps(); ++X)
        for (int Y = 0; Y < Dense.numOps(); ++Y)
          ASSERT_EQ(Fast.at(X, Y), Dense.at(X, Y));
    }
  }
}

TEST(MinDistSccTest, EstartLstartBuffersMatchByValueForms) {
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Kernels = buildKernelSuite();
  ASSERT_FALSE(Kernels.empty());
  const DepGraph Graph(Kernels.front(), Machine);
  const int MII = computeMII(Graph).MII;
  MinDistMatrix MinDist;
  ASSERT_TRUE(MinDist.compute(Graph, MII));

  std::vector<long> Buf;
  for (int Op = 0; Op < MinDist.numOps(); ++Op) {
    MinDist.estarts(Op, Buf);
    EXPECT_EQ(Buf, MinDist.estarts(Op));
    MinDist.lstarts(Op, /*Cap=*/3 * MII, Buf);
    EXPECT_EQ(Buf, MinDist.lstarts(Op, 3 * MII));
  }
}

} // namespace
} // namespace lsms
