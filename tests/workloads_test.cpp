//===----------------------------------------------------------------------===//
/// \file Tests for the kernel suite and the random loop generator,
/// including property-style sweeps: every generated loop must verify,
/// schedule, validate, and execute equivalently to the reference.
//===----------------------------------------------------------------------===//

#include "bounds/Bounds.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "graph/Scc.h"
#include "vliwsim/Execution.h"
#include "workloads/RandomLoop.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

} // namespace

TEST(KernelSuite, AllKernelsCompileAndVerify) {
  const std::vector<LoopBody> Suite = buildKernelSuite();
  EXPECT_GE(Suite.size(), 25u);
  for (const LoopBody &Body : Suite)
    EXPECT_EQ(Body.verify(), "") << Body.Name;
}

TEST(KernelSuite, ClassMixIsRepresented) {
  const std::vector<LoopBody> Suite = buildKernelSuite();
  int Conditionals = 0, Recurrences = 0;
  for (const LoopBody &Body : Suite) {
    if (Body.HasConditional)
      ++Conditionals;
    const DepGraph Graph(Body, machine());
    const SccInfo Sccs = computeSccs(Graph);
    bool HasRec = false;
    for (bool B : Sccs.OnRecurrence)
      HasRec |= B;
    Recurrences += HasRec ? 1 : 0;
  }
  EXPECT_GE(Conditionals, 4);
  EXPECT_GE(Recurrences, 6);
}

TEST(KernelSuite, AllKernelsScheduleAndExecute) {
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, machine());
    const Schedule Sched = scheduleLoop(Graph);
    ASSERT_TRUE(Sched.Success) << Body.Name;
    EXPECT_EQ(validateSchedule(Graph, Sched), "") << Body.Name;
    const ExecutionResult Ref = runReference(Body, 30);
    const ExecutionResult Pipe = runPipelined(Body, Sched, 30);
    EXPECT_EQ(compareExecutions(Ref, Pipe), "") << Body.Name;
  }
}

TEST(RandomLoop, GenerationIsDeterministic) {
  const LoopBody A = generateRandomLoop(7);
  const LoopBody B = generateRandomLoop(7);
  EXPECT_EQ(A.Source, B.Source);
  EXPECT_EQ(A.numOps(), B.numOps());
}

TEST(RandomLoop, DistinctSeedsProduceDistinctLoops) {
  int Distinct = 0;
  const LoopBody A = generateRandomLoop(1);
  for (uint64_t Seed = 2; Seed < 8; ++Seed)
    Distinct += generateRandomLoop(Seed).Source != A.Source ? 1 : 0;
  EXPECT_GE(Distinct, 5);
}

TEST(RandomLoop, SizesSpanTable2Range) {
  Rng R(99);
  int Small = 0, Large = 0;
  for (int I = 0; I < 200; ++I) {
    const RandomLoopConfig C = drawTable2Config(R);
    Small += C.TargetOps <= 12 ? 1 : 0;
    Large += C.TargetOps >= 60 ? 1 : 0;
  }
  EXPECT_GT(Small, 10);
  EXPECT_GT(Large, 10);
}

// Property sweep: random loops across seeds must verify, schedule at some
// II, pass the independent validator, and execute equivalently.
class RandomLoopProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomLoopProperty, ScheduleValidateExecute) {
  const uint64_t Seed = static_cast<uint64_t>(GetParam());
  const LoopBody Body = generateRandomLoop(Seed);
  ASSERT_EQ(Body.verify(), "") << Body.Source;

  const DepGraph Graph(Body, machine());
  for (const SchedulerOptions &Options :
       {SchedulerOptions::slack(), SchedulerOptions::cydrome(),
        SchedulerOptions::unidirectionalSlack()}) {
    const Schedule Sched = scheduleLoop(Graph, Options);
    if (!Sched.Success)
      continue; // rare; Table 4 shows the baseline can fail
    ASSERT_EQ(validateSchedule(Graph, Sched), "") << Body.Source;
    const ExecutionResult Ref = runReference(Body, 24);
    ASSERT_EQ(Ref.Error, "") << Body.Source;
    const ExecutionResult Pipe = runPipelined(Body, Sched, 24);
    ASSERT_EQ(Pipe.Error, "") << Body.Source;
    ASSERT_EQ(compareExecutions(Ref, Pipe), "") << Body.Source;
  }

  // The slack scheduler itself is expected to succeed on generated loops.
  const Schedule Slack = scheduleLoop(Graph);
  EXPECT_TRUE(Slack.Success) << Body.Source;
  EXPECT_GE(Slack.II, Slack.MII);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLoopProperty,
                         ::testing::Range(1, 121));

// Property sweep: MII really is a lower bound — no schedule ever beats it,
// and achieved IIs respect both component bounds.
class MIIBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(MIIBoundProperty, AchievedIINeverBelowBounds) {
  const LoopBody Body = generateRandomLoop(
      static_cast<uint64_t>(GetParam()) + 5000);
  const DepGraph Graph(Body, machine());
  const MIIBounds Bounds = computeMII(Graph);
  EXPECT_EQ(Bounds.MII, std::max(Bounds.ResMII, Bounds.RecMII));
  const Schedule Sched = scheduleLoop(Graph);
  if (Sched.Success) {
    EXPECT_GE(Sched.II, Bounds.MII);
    EXPECT_EQ(Sched.MII, Bounds.MII);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MIIBoundProperty, ::testing::Range(1, 41));
