//===----------------------------------------------------------------------===//
/// \file Tests for the work-sharding primitive and the determinism policy
/// it exists to uphold (DESIGN.md "Parallelism & determinism"): every sweep
/// that fans out across workers must produce byte-identical reports at any
/// job count, because results live in per-index slots and are aggregated in
/// input order.
//===----------------------------------------------------------------------===//

#include "exact/Oracle.h"
#include "support/ParallelFor.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace lsms {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const int Jobs : {1, 2, 3, 8}) {
    for (const int N : {0, 1, 2, 7, 64}) {
      std::vector<std::atomic<int>> Hits(static_cast<size_t>(N));
      parallelFor(Jobs, N, [&](int I) {
        ++Hits[static_cast<size_t>(I)];
      });
      for (int I = 0; I < N; ++I)
        EXPECT_EQ(Hits[static_cast<size_t>(I)].load(), 1)
            << "Jobs=" << Jobs << " N=" << N << " I=" << I;
    }
  }
}

TEST(ParallelForTest, SequentialPathRunsInOrder) {
  // Jobs <= 1 must run inline in index order (callers rely on this for the
  // exact sequential code path).
  std::vector<int> Order;
  parallelFor(1, 5, [&](int I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
  Order.clear();
  parallelFor(0, 3, [&](int I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2}));
}

TEST(ParallelForTest, JobsClampedToWorkAvailable) {
  // More workers than items must still cover everything exactly once.
  std::vector<std::atomic<int>> Hits(3);
  parallelFor(16, 3, [&](int I) { ++Hits[static_cast<size_t>(I)]; });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1);
}

TEST(ParallelForTest, ResolveJobsPrecedence) {
  // An explicit request wins; otherwise LSMS_JOBS; otherwise hardware.
  EXPECT_EQ(resolveJobs(3), 3);
  ASSERT_EQ(setenv("LSMS_JOBS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(resolveJobs(0), 5);
  EXPECT_EQ(resolveJobs(2), 2);
  ASSERT_EQ(unsetenv("LSMS_JOBS"), 0);
  EXPECT_EQ(resolveJobs(0), hardwareJobs());
  EXPECT_GE(hardwareJobs(), 1);
}

TEST(ParallelDeterminismTest, OracleSuiteIdenticalAcrossJobCounts) {
  const std::vector<LoopBody> Seq =
      buildOracleSuite(/*Count=*/24, /*MinOps=*/3, /*MaxOps=*/16,
                       /*Seed=*/0xBEEF, /*Jobs=*/1);
  for (const int Jobs : {2, hardwareJobs()}) {
    const std::vector<LoopBody> Par =
        buildOracleSuite(24, 3, 16, 0xBEEF, Jobs);
    ASSERT_EQ(Par.size(), Seq.size()) << "Jobs=" << Jobs;
    for (size_t I = 0; I < Seq.size(); ++I) {
      EXPECT_EQ(Par[I].Name, Seq[I].Name) << "Jobs=" << Jobs;
      EXPECT_EQ(Par[I].numMachineOps(), Seq[I].numMachineOps())
          << "Jobs=" << Jobs << " loop " << I;
    }
  }
}

TEST(ParallelDeterminismTest, OracleReportByteIdenticalAcrossJobCounts) {
  OracleOptions Options;
  Options.NumLoops = 12;
  Options.Seed = 0x5EED;

  auto Render = [&Options](int Jobs) {
    Options.Jobs = Jobs;
    const OracleReport Report = runOracle(Options);
    std::ostringstream OS;
    printOracleReport(OS, Report);
    return OS.str();
  };

  const std::string Seq = Render(1);
  EXPECT_FALSE(Seq.empty());
  EXPECT_EQ(Render(2), Seq);
  EXPECT_EQ(Render(hardwareJobs()), Seq);
}

} // namespace
} // namespace lsms
