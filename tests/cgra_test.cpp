//===----------------------------------------------------------------------===//
/// \file Tests for the CGRA spatial mapping subsystem: config-grammar
/// parsing (positives and negatives), mesh/torus hop distances, the flat
/// over-approximation's unit counts, validateMapping rejecting hand-broken
/// mappings, the placement-aware heuristic on the kernel suite, the exact
/// SAT mapper's parity with the heuristic on small grids, and a loop whose
/// certified spatial II sits strictly above the flat MII.
//===----------------------------------------------------------------------===//

#include "cgra/CgraOracle.h"
#include "ir/IRBuilder.h"
#include "workloads/Kernels.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

/// A one-load fan-out loop: t = a(i), then three independent adds of t.
/// Exercises the route model (one producer, several consumer PEs).
LoopBody buildFanOutLoop() {
  LoopBody Body;
  Body.Name = "fanout";
  IRBuilder B(Body);
  const int Arr = B.newArray();
  const int Addr = B.addressStream("addr", 0);
  const int T = B.emitLoad(Arr, 0, Use{Addr, 0}, "t");
  const int C1 = B.invariant("c1", 1.0);
  const int C2 = B.invariant("c2", 2.0);
  const int C3 = B.invariant("c3", 3.0);
  const int X1 = B.emitValue(Opcode::FloatAdd, {Use{T, 0}, Use{C1, 0}}, "x1");
  const int X2 = B.emitValue(Opcode::FloatAdd, {Use{T, 0}, Use{C2, 0}}, "x2");
  const int X3 = B.emitValue(Opcode::FloatAdd, {Use{T, 0}, Use{C3, 0}}, "x3");
  B.markLiveOut(X1);
  B.markLiveOut(X2);
  B.markLiveOut(X3);
  B.finish();
  return Body;
}

int opByName(const LoopBody &Body, const std::string &Name) {
  for (const Operation &Op : Body.Ops)
    if (Op.Name == Name)
      return Op.Id;
  return -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// Model: parsing, hop geometry, flattening
//===----------------------------------------------------------------------===//

TEST(CgraModel, DefaultGridCapabilities) {
  const CgraModel Cgra = CgraModel::defaultGrid(4, 4);
  EXPECT_EQ(Cgra.rows(), 4);
  EXPECT_EQ(Cgra.cols(), 4);
  EXPECT_EQ(Cgra.numPes(), 16);
  EXPECT_FALSE(Cgra.isTorus());
  EXPECT_EQ(Cgra.hopLatency(), 1);
  EXPECT_EQ(Cgra.routeCapacity(), 2);
  // Column 0 has mem, every PE has alu, the right half has mul, only the
  // bottom-right corner divides.
  EXPECT_EQ(Cgra.capableCount(PeCap::Mem), 4);
  EXPECT_EQ(Cgra.capableCount(PeCap::Alu), 16);
  EXPECT_EQ(Cgra.capableCount(PeCap::Mul), 8);
  EXPECT_EQ(Cgra.capableCount(PeCap::Div), 1);
  EXPECT_TRUE(Cgra.hasCap(Cgra.peId(0, 0), PeCap::Mem));
  EXPECT_FALSE(Cgra.hasCap(Cgra.peId(0, 1), PeCap::Mem));
  EXPECT_TRUE(Cgra.hasCap(Cgra.peId(3, 3), PeCap::Div));
  EXPECT_FALSE(Cgra.hasCap(Cgra.peId(0, 0), PeCap::Div));
  EXPECT_FALSE(Cgra.describe().empty());
}

TEST(CgraModel, ParseGrammarPositive) {
  const std::string Config = "# reference grid\n"
                             "grid 2x3 torus hop=2 route=1\n"
                             "pe * : alu\n"
                             "pe 0,0 : mem alu\n"
                             "pe 1,2 : all\n";
  CgraModel Cgra;
  std::string Err;
  ASSERT_TRUE(CgraModel::parse(Config, Cgra, Err)) << Err;
  EXPECT_EQ(Cgra.rows(), 2);
  EXPECT_EQ(Cgra.cols(), 3);
  EXPECT_TRUE(Cgra.isTorus());
  EXPECT_EQ(Cgra.hopLatency(), 2);
  EXPECT_EQ(Cgra.routeCapacity(), 1);
  EXPECT_EQ(Cgra.capableCount(PeCap::Mem), 2);  // (0,0) and the all-PE
  EXPECT_EQ(Cgra.capableCount(PeCap::Alu), 6);
  EXPECT_EQ(Cgra.capableCount(PeCap::Mul), 1);
  EXPECT_EQ(Cgra.capableCount(PeCap::Div), 1);
  EXPECT_TRUE(Cgra.hasCap(Cgra.peId(1, 2), PeCap::Div));
  EXPECT_FALSE(Cgra.hasCap(Cgra.peId(0, 1), PeCap::Mem));
}

TEST(CgraModel, ParseGrammarNegatives) {
  CgraModel Cgra;
  std::string Err;
  // Bad grid dimensions.
  EXPECT_FALSE(CgraModel::parse("grid 0x4\n", Cgra, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(CgraModel::parse("grid axb\n", Cgra, Err));
  EXPECT_FALSE(CgraModel::parse("grid 65x1\n", Cgra, Err));
  // Unknown capability.
  EXPECT_FALSE(CgraModel::parse("grid 2x2\npe * : frob\n", Cgra, Err));
  EXPECT_FALSE(Err.empty());
  // Zero routing capacity.
  EXPECT_FALSE(CgraModel::parse("grid 2x2 route=0\n", Cgra, Err));
  EXPECT_FALSE(Err.empty());
  // pe line before the grid line, and a config with no grid at all.
  EXPECT_FALSE(CgraModel::parse("pe 0,0 : alu\ngrid 2x2\n", Cgra, Err));
  EXPECT_FALSE(CgraModel::parse("# nothing here\n", Cgra, Err));
  // Unknown attribute on the grid line.
  EXPECT_FALSE(CgraModel::parse("grid 2x2 ring\n", Cgra, Err));
}

TEST(CgraModel, ParseGridArg) {
  CgraModel Cgra;
  std::string Err;
  ASSERT_TRUE(CgraModel::parseGridArg("3x5", Cgra, Err)) << Err;
  EXPECT_EQ(Cgra.rows(), 3);
  EXPECT_EQ(Cgra.cols(), 5);
  EXPECT_FALSE(CgraModel::parseGridArg("4", Cgra, Err));
  EXPECT_FALSE(CgraModel::parseGridArg("0x3", Cgra, Err));
  EXPECT_FALSE(CgraModel::parseGridArg("axb", Cgra, Err));
}

TEST(CgraModel, HopDistanceMeshVsTorus) {
  const CgraModel Mesh = CgraModel::defaultGrid(4, 4);
  const int A = Mesh.peId(0, 0), B = Mesh.peId(3, 3);
  EXPECT_EQ(Mesh.hopDistance(A, A), 0);
  EXPECT_EQ(Mesh.hopDistance(A, B), 6);
  EXPECT_EQ(Mesh.hopDistance(B, A), 6);
  EXPECT_EQ(Mesh.hopDelay(A, B), 6);

  CgraModel Torus;
  std::string Err;
  ASSERT_TRUE(
      CgraModel::parse("grid 4x4 torus hop=2\npe * : all\n", Torus, Err))
      << Err;
  // Opposite corners are one wrap-around step per axis on the torus.
  EXPECT_EQ(Torus.hopDistance(A, B), 2);
  EXPECT_EQ(Torus.hopDelay(A, B), 4);
}

TEST(CgraModel, FlattenedUnitCountsAreCapablePeCounts) {
  const CgraModel Cgra = CgraModel::defaultGrid(2, 2);
  // mem on column 0 (2 PEs), alu everywhere (4), mul on column 1 (2),
  // div only bottom-right (1).
  const MachineModel &Flat = Cgra.flatModel();
  EXPECT_EQ(Flat.unitCount(FuKind::MemoryPort), 2);
  EXPECT_EQ(Flat.unitCount(FuKind::Adder), 4);
  EXPECT_EQ(Flat.unitCount(FuKind::AddressAlu), 4);
  EXPECT_EQ(Flat.unitCount(FuKind::Multiplier), 2);
  EXPECT_EQ(Flat.unitCount(FuKind::Divider), 1);
}

//===----------------------------------------------------------------------===//
// validateMapping: hand-broken mappings must be rejected
//===----------------------------------------------------------------------===//

TEST(CgraValidate, AcceptsHeuristicMappingAndRejectsCorruptions) {
  const CgraModel Cgra = CgraModel::defaultGrid(4, 4);
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, Cgra.flatModel());
  const CgraMapping Map = mapLoopCgra(Graph, Cgra);
  ASSERT_TRUE(Map.Success);
  ASSERT_EQ(validateMapping(Graph, Cgra, Map), "");

  // Two time-ops forced onto one PE in the same modulo slot.
  {
    CgraMapping Broken = Map;
    int First = -1;
    for (int Op = 0; Op < Graph.numOps(); ++Op) {
      if (Broken.Pes[static_cast<size_t>(Op)] < 0)
        continue;
      if (First < 0) {
        First = Op;
        continue;
      }
      Broken.Pes[static_cast<size_t>(Op)] =
          Broken.Pes[static_cast<size_t>(First)];
      Broken.Times[static_cast<size_t>(Op)] =
          Broken.Times[static_cast<size_t>(First)];
      break;
    }
    EXPECT_NE(validateMapping(Graph, Cgra, Broken), "");
  }

  // A load moved to a PE with no memory port (column 0 is the only mem
  // column on the default grid).
  {
    CgraMapping Broken = Map;
    const int Load = opByName(Body, "lx");
    ASSERT_GE(Load, 0);
    Broken.Pes[static_cast<size_t>(Load)] = Cgra.peId(0, 3);
    EXPECT_NE(validateMapping(Graph, Cgra, Broken), "");
  }

  // A dependence arc broken by pushing a producer past its consumer.
  {
    CgraMapping Broken = Map;
    const int Load = opByName(Body, "lx");
    Broken.Times[static_cast<size_t>(Load)] += 1000;
    EXPECT_NE(validateMapping(Graph, Cgra, Broken), "");
  }

  // Structurally bad containers.
  {
    CgraMapping Broken = Map;
    Broken.II = 0;
    EXPECT_NE(validateMapping(Graph, Cgra, Broken), "");
    Broken = Map;
    Broken.Pes.pop_back();
    EXPECT_NE(validateMapping(Graph, Cgra, Broken), "");
  }
}

TEST(CgraValidate, RouteOverflowIsDetected) {
  CgraModel Cgra;
  std::string Err;
  ASSERT_TRUE(
      CgraModel::parse("grid 2x2 mesh route=1\npe * : all\n", Cgra, Err))
      << Err;
  const LoopBody Body = buildFanOutLoop();
  const DepGraph Graph(Body, Cgra.flatModel());
  const CgraMapping Map = mapLoopCgra(Graph, Cgra);
  ASSERT_TRUE(Map.Success);
  ASSERT_EQ(validateMapping(Graph, Cgra, Map), "");

  // Scatter the three adds across the three PEs the load does not sit on:
  // all three transfers leave the load's PE at one departure residue,
  // overflowing route capacity 1.
  CgraMapping Broken = Map;
  const int Load = opByName(Body, "t");
  ASSERT_GE(Load, 0);
  const int LoadPe = Broken.Pes[static_cast<size_t>(Load)];
  int Next = 0;
  for (const char *Name : {"x1", "x2", "x3"}) {
    const int Add = opByName(Body, Name);
    ASSERT_GE(Add, 0);
    while (Next == LoadPe)
      ++Next;
    Broken.Pes[static_cast<size_t>(Add)] = Next++;
  }
  std::vector<int> Counts;
  int OverPe = -1, OverResidue = -1;
  EXPECT_FALSE(countRouteUse(Graph, Cgra, Broken.Times, Broken.Pes,
                             Broken.II, Counts, &OverPe, &OverResidue));
  EXPECT_EQ(OverPe, LoadPe);
  EXPECT_NE(validateMapping(Graph, Cgra, Broken), "");
}

//===----------------------------------------------------------------------===//
// Mappers: heuristic on the kernel suite, exact parity, binding grids
//===----------------------------------------------------------------------===//

TEST(CgraMapper, KernelSuiteMapsAndValidatesOn4x4) {
  const CgraModel Cgra = CgraModel::defaultGrid(4, 4);
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, Cgra.flatModel());
    const CgraMapping Map = mapLoopCgra(Graph, Cgra);
    ASSERT_TRUE(Map.Success) << Body.Name;
    EXPECT_EQ(validateMapping(Graph, Cgra, Map), "") << Body.Name;
    EXPECT_GE(Map.II, Map.MII) << Body.Name;
  }
}

TEST(CgraExact, ParityAndDeterminismOnSmallGrid) {
  CgraOracleOptions Options;
  Options.NumLoops = 12;
  Options.MinOps = 3;
  Options.MaxOps = 8;
  Options.Cgra = CgraModel::defaultGrid(2, 2);
  Options.IncludeKernels = false;

  const CgraOracleReport A = runCgraOracle(Options);
  EXPECT_EQ(A.ValidationFailures, 0);
  EXPECT_EQ(A.ParityViolations, 0);
  EXPECT_EQ(static_cast<int>(A.Cases.size()), 12);
  for (const CgraOracleCase &Case : A.Cases) {
    if (Case.Status == ExactStatus::Optimal && Case.HeurSuccess) {
      EXPECT_GE(Case.HeurII, Case.ExactII) << Case.Name;
    }
  }

  // Bit-for-bit determinism, including across job counts.
  Options.Jobs = 3;
  const CgraOracleReport B = runCgraOracle(Options);
  ASSERT_EQ(A.Cases.size(), B.Cases.size());
  for (size_t I = 0; I < A.Cases.size(); ++I) {
    EXPECT_EQ(A.Cases[I].HeurII, B.Cases[I].HeurII) << I;
    EXPECT_EQ(A.Cases[I].ExactII, B.Cases[I].ExactII) << I;
    EXPECT_EQ(A.Cases[I].Status, B.Cases[I].Status) << I;
    EXPECT_EQ(A.Cases[I].FlatMII, B.Cases[I].FlatMII) << I;
  }
}

TEST(CgraExact, SinglePeGridCertifiesSpatialIIAboveFlatMII) {
  // On a 1x1 grid the single PE serializes every operation, while the
  // flat over-approximation still sees one unit per kind — so daxpy's
  // certified spatial II must sit strictly above the flat MII.
  const CgraModel Cgra = CgraModel::defaultGrid(1, 1);
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, Cgra.flatModel());

  const CgraExactResult Exact = mapLoopCgraExact(Graph, Cgra);
  ASSERT_EQ(Exact.Status, ExactStatus::Optimal);
  EXPECT_EQ(validateMapping(Graph, Cgra, Exact.Map), "");
  EXPECT_GT(Exact.Map.II, Exact.Map.MII);
  // One PE, one op per cycle: the II can never undercut the op count.
  EXPECT_GE(Exact.Map.II, Body.numMachineOps() - 1); // brtop is not placed

  const CgraMapping Heur = mapLoopCgra(Graph, Cgra);
  ASSERT_TRUE(Heur.Success);
  EXPECT_EQ(validateMapping(Graph, Cgra, Heur), "");
  EXPECT_GE(Heur.II, Exact.Map.II);
}
