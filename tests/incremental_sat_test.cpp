//===----------------------------------------------------------------------===//
/// \file Tests for the incremental solving layer and the portfolio engine:
/// assumption-based solving with activation-literal retraction, learned-
/// clause persistence across solve calls, UNSAT-core (finalConflict)
/// sanity, portfolio verdict/certificate parity against both component
/// engines on the kernel suite and a seeded random sweep, and byte-
/// identical portfolio oracle reports across worker counts.
//===----------------------------------------------------------------------===//

#include "exact/ExactEngine.h"
#include "exact/Oracle.h"
#include "sat/SatSolver.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

using namespace lsms;

namespace {

bool add(SatSolver &S, std::initializer_list<Lit> Ls) {
  return S.addClause(std::vector<Lit>(Ls));
}

/// True when \p Core (a finalConflict) is a subset of \p Assumed.
bool coreSubsetOfAssumptions(const std::vector<Lit> &Core,
                             const std::vector<Lit> &Assumed) {
  return std::all_of(Core.begin(), Core.end(), [&](Lit L) {
    return std::find_if(Assumed.begin(), Assumed.end(), [&](Lit A) {
             return A.Code == L.Code;
           }) != Assumed.end();
  });
}

} // namespace

TEST(IncrementalSat, AssumptionsDoNotPoisonTheSolver) {
  SatSolver S;
  const int X = S.newVar(), Y = S.newVar();
  add(S, {mkLit(X), mkLit(Y)});
  // Assuming both false contradicts the clause...
  EXPECT_EQ(S.solveUnderAssumptions({mkLit(X, true), mkLit(Y, true)}),
            SatResult::Unsat);
  // ...but only under those assumptions: the solver stays usable and the
  // formula stays satisfiable.
  EXPECT_TRUE(S.okay());
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(X) || S.modelValue(Y));
}

TEST(IncrementalSat, ActivationLiteralRetractsConstraintGroup) {
  SatSolver S;
  const int X = S.newVar(), Y = S.newVar();
  const int Guard = S.newVar();
  // Group {x, y} guarded by Guard: active under the assumption ~Guard.
  add(S, {mkLit(Guard), mkLit(X)});
  add(S, {mkLit(Guard), mkLit(Y)});
  add(S, {mkLit(X, true), mkLit(Y, true)}); // permanent: not both
  // Active group forces x and y simultaneously: unsat under ~Guard.
  EXPECT_EQ(S.solveUnderAssumptions({mkLit(Guard, true)}), SatResult::Unsat);
  // Retire the group with the permanent unit {Guard}: satisfiable again,
  // for good, because every group clause is satisfied by Guard.
  EXPECT_TRUE(S.addClause({mkLit(Guard)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.okay());
}

TEST(IncrementalSat, LearnedClausesPersistAcrossCalls) {
  // Pigeonhole PHP(5,4) under a fresh guard is hard enough to force real
  // conflict-driven learning; a second identical query must then reuse the
  // learned clauses instead of re-deriving them.
  SatSolver S;
  const int Pigeons = 5, Holes = 4;
  std::vector<std::vector<int>> Var(
      static_cast<size_t>(Pigeons),
      std::vector<int>(static_cast<size_t>(Holes)));
  for (auto &Row : Var)
    for (int &V : Row)
      V = S.newVar();
  for (int P = 0; P < Pigeons; ++P) {
    std::vector<Lit> AtLeastOne;
    for (int H = 0; H < Holes; ++H)
      AtLeastOne.push_back(mkLit(Var[static_cast<size_t>(P)][static_cast<size_t>(H)]));
    S.addClause(AtLeastOne);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P = 0; P < Pigeons; ++P)
      for (int Q = P + 1; Q < Pigeons; ++Q)
        add(S, {mkLit(Var[static_cast<size_t>(P)][static_cast<size_t>(H)], true),
                mkLit(Var[static_cast<size_t>(Q)][static_cast<size_t>(H)], true)});

  const int A = S.newVar(); // an assumption variable unrelated to PHP
  EXPECT_EQ(S.solveUnderAssumptions({mkLit(A)}), SatResult::Unsat);
  const long FirstConflicts = S.stats().Conflicts;
  EXPECT_GT(FirstConflicts, 0);
  EXPECT_GT(S.stats().Learned, 0);
  // PHP is unsat on its own, so okay() must now be false (the conflict is
  // assumption-free) OR the repeat costs far less than the first call.
  if (S.okay()) {
    EXPECT_EQ(S.solveUnderAssumptions({mkLit(A)}), SatResult::Unsat);
    const long SecondConflicts = S.stats().Conflicts - FirstConflicts;
    EXPECT_LT(SecondConflicts, FirstConflicts / 2);
  }
}

TEST(IncrementalSat, FinalConflictIsACoreOverAssumptions) {
  SatSolver S;
  const int X = S.newVar(), Y = S.newVar(), Z = S.newVar();
  add(S, {mkLit(X, true), mkLit(Y)});  // x -> y
  add(S, {mkLit(Y, true), mkLit(Z)});  // y -> z
  // Assume x, ~z (contradictory through the chain) and an irrelevant y...
  const std::vector<Lit> Assumed{mkLit(X), mkLit(Z, true)};
  EXPECT_EQ(S.solveUnderAssumptions(Assumed), SatResult::Unsat);
  const std::vector<Lit> Core = S.finalConflict(); // copy: re-solves clobber it
  EXPECT_FALSE(Core.empty());
  EXPECT_TRUE(coreSubsetOfAssumptions(Core, Assumed));
  // The core itself must be unsat: re-solving under it alone still fails.
  EXPECT_EQ(S.solveUnderAssumptions(Core), SatResult::Unsat);
  // Dropping the core's literals makes the query satisfiable.
  std::vector<Lit> Rest;
  for (Lit L : Assumed)
    if (std::find_if(Core.begin(), Core.end(), [&](Lit C) {
          return C.Code == L.Code;
        }) == Core.end())
      Rest.push_back(L);
  EXPECT_EQ(S.solveUnderAssumptions(Rest), SatResult::Sat);
}

TEST(IncrementalSat, AlreadySatisfiedAssumptionsKeepLevelAlignment) {
  SatSolver S;
  const int X = S.newVar(), Y = S.newVar();
  EXPECT_TRUE(S.addClause({mkLit(X)})); // x is a root-level fact
  add(S, {mkLit(X, true), mkLit(Y, true)});
  // Assuming the already-true x first must not desynchronize the
  // assumption index from the decision level: the contradiction with the
  // second assumption y must still be detected as assumption-unsat.
  EXPECT_EQ(S.solveUnderAssumptions({mkLit(X), mkLit(Y)}), SatResult::Unsat);
  EXPECT_TRUE(S.okay());
  const std::vector<Lit> &Core = S.finalConflict();
  EXPECT_TRUE(coreSubsetOfAssumptions(Core, {mkLit(X), mkLit(Y)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

namespace {

/// Runs scheduleLoopExact with the given engine, MaxLive pass on.
ExactResult runEngine(const DepGraph &Graph, ExactEngineKind Engine) {
  ExactOptions Options;
  Options.Engine = Engine;
  Options.MinimizeMaxLive = true;
  return scheduleLoopExact(Graph, Options);
}

/// Asserts portfolio parity on one loop: feasibility verdict and minimal
/// II must match both component engines exactly (all three are complete
/// decision procedures over the same question), and certified MaxLive
/// values must be mutually consistent.
void expectPortfolioParity(const LoopBody &Body, const MachineModel &Machine) {
  const DepGraph Graph(Body, Machine);
  const ExactResult Bnb = runEngine(Graph, ExactEngineKind::BranchAndBound);
  const ExactResult Sat = runEngine(Graph, ExactEngineKind::Sat);
  const ExactResult Pf = runEngine(Graph, ExactEngineKind::Portfolio);
  for (const ExactResult *Other : {&Bnb, &Sat}) {
    if (Pf.Status == ExactStatus::Timeout ||
        Other->Status == ExactStatus::Timeout)
      continue; // a budget verdict proves nothing
    EXPECT_EQ(Pf.Sched.Success, Other->Sched.Success) << Body.Name;
    if (Pf.Sched.Success && Other->Sched.Success) {
      EXPECT_EQ(Pf.Sched.II, Other->Sched.II) << Body.Name;
    }
    EXPECT_TRUE(certifiedMaxLiveConsistent(Pf.MaxLive, Pf.Certificate,
                                           Other->MaxLive,
                                           Other->Certificate))
        << Body.Name << ": portfolio " << Pf.MaxLive << " ("
        << maxLiveCertificateName(Pf.Certificate) << ") vs "
        << exactEngineName(Other->Engine) << " " << Other->MaxLive << " ("
        << maxLiveCertificateName(Other->Certificate) << ")";
    if (maxLiveCertificatesAgree(Pf.Certificate, Other->Certificate) &&
        Pf.Certificate != MaxLiveCertificate::None) {
      EXPECT_EQ(Pf.MaxLive, Other->MaxLive) << Body.Name;
    }
  }
}

} // namespace

TEST(PortfolioParity, KernelSuite) {
  const MachineModel Machine = MachineModel::cydra5();
  for (const LoopBody &Body : buildKernelSuite())
    expectPortfolioParity(Body, Machine);
}

TEST(PortfolioParity, SeededRandomLoops) {
  const MachineModel Machine = MachineModel::cydra5();
  // 200 loops, sizes small enough that all three engines finish inside
  // their default budgets on every loop (the sweep stays a few seconds).
  const std::vector<LoopBody> Suite =
      buildOracleSuite(200, 3, 14, 0x1993F00D);
  for (const LoopBody &Body : Suite)
    expectPortfolioParity(Body, Machine);
}

TEST(PortfolioParity, OracleReportByteIdenticalAcrossJobs) {
  OracleOptions Options;
  Options.NumLoops = 12;
  Options.Exact.Engine = ExactEngineKind::Portfolio;
  std::string First;
  for (const int Jobs : {1, 4, 16}) {
    Options.Jobs = Jobs;
    const OracleReport Report = runOracle(Options);
    std::ostringstream OS;
    printOracleReport(OS, Report);
    if (First.empty())
      First = OS.str();
    else
      EXPECT_EQ(First, OS.str()) << "jobs=" << Jobs;
  }
  EXPECT_FALSE(First.empty());
}

TEST(PortfolioEngine, StopFlagYieldsTimeoutPromptly) {
  // A pre-set stop token must surface as Timeout (never a wrong verdict)
  // through every engine selection.
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildOracleSuite(1, 12, 14, 7);
  const DepGraph Graph(Suite.front(), Machine);
  std::atomic<bool> Stop{true};
  for (const ExactEngineKind Engine :
       {ExactEngineKind::BranchAndBound, ExactEngineKind::Sat,
        ExactEngineKind::Portfolio}) {
    ExactOptions Options;
    Options.Engine = Engine;
    Options.Stop = &Stop;
    const ExactResult R = scheduleLoopExact(Graph, Options);
    EXPECT_EQ(R.Status, ExactStatus::Timeout) << exactEngineName(Engine);
    EXPECT_FALSE(R.Sched.Success) << exactEngineName(Engine);
  }
  // Clearing the flag restores normal operation on the same input.
  Stop = false;
  ExactOptions Options;
  Options.Engine = ExactEngineKind::Portfolio;
  Options.Stop = &Stop;
  const ExactResult R = scheduleLoopExact(Graph, Options);
  EXPECT_NE(R.Status, ExactStatus::Timeout);
}
