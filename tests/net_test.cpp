//===----------------------------------------------------------------------===//
/// Loopback integration tests for the epoll front end (net/EpollServer.h):
/// byte-identity of the socket path against the JSONL pipe, pipelined and
/// concurrent clients with strict per-connection response ordering,
/// overload shedding under a bounded admission queue, the tiered overload
/// ladder (exact -> slack -> cached -> shed), SO_REUSEPORT IO sharding,
/// the metrics control command, graceful drain of in-flight work,
/// connection-cap rejection, and warm restarts answering from the
/// persistent store.
//===----------------------------------------------------------------------===//

#include "net/EpollServer.h"
#include "net/JsonlClient.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace lsms;

namespace {

/// A service + server + IO thread with scoped lifetime.
struct TestServer {
  SchedulingService Svc;
  EpollServer Srv;
  std::thread IO;

  explicit TestServer(ServiceConfig SC = ServiceConfig(),
                      ServerConfig NC = ServerConfig())
      : Svc(std::move(SC)), Srv(Svc, std::move(NC)) {
    std::string Err;
    EXPECT_TRUE(Srv.start(Err)) << Err;
    IO = std::thread([this] { Srv.serve(); });
  }
  ~TestServer() { stop(); }
  void stop() {
    if (IO.joinable()) {
      Srv.requestStop();
      IO.join();
    }
  }
  uint16_t port() const { return Srv.port(); }
};

JsonlClient connectTo(const TestServer &Server) {
  JsonlClient Client;
  std::string Err;
  EXPECT_TRUE(Client.connect("127.0.0.1", Server.port(), Err)) << Err;
  return Client;
}

/// Sends every line pipelined, half-closes, and returns the full response
/// stream (one string, newline-terminated lines) up to the server's EOF.
std::string roundTrip(const TestServer &Server,
                      const std::string &RequestBytes) {
  JsonlClient Client = connectTo(Server);
  std::string Err;
  EXPECT_TRUE(Client.sendRaw(RequestBytes, Err)) << Err;
  Client.shutdownWrite();
  std::string Stream, Line;
  while (Client.recvLine(Line, Err))
    Stream += Line + "\n";
  EXPECT_TRUE(Err.empty()) << Err;
  return Stream;
}

std::string requestCorpus() {
  std::ostringstream OS;
  OS << "{\"kernel\": \"ll1_hydro\", \"engine\": \"bnb\"}\n"
     << "# a comment the framing must skip\n"
     << "{\"kernel\": \"daxpy\"}\n"
     << "\n"
     << "{\"source\": \"loop i = 2, n\\n  x[i] = x[i-1] * 0.5 + u[i]\\nend\", "
        "\"emit_times\": true}\n"
     << "{\"kernel\": \"no_such_kernel\"}\n"
     << "{\"this is\": not json\n"
     << "{\"kernel\": \"ll5_tridiag\", \"engine\": \"sat\", \"id\": \"t1\"}\n";
  return OS.str();
}

} // namespace

TEST(NetServer, ByteIdenticalWithJsonlPipe) {
  const std::string Requests = requestCorpus();

  // Reference: the stdin pipe on an identically configured service.
  ServiceConfig SC;
  SC.Jobs = 2;
  std::string Expected;
  {
    SchedulingService Pipe(SC);
    std::istringstream In(Requests);
    std::ostringstream Out;
    Pipe.processJsonl(In, Out);
    Expected = Out.str();
  }
  ASSERT_FALSE(Expected.empty());

  TestServer Server(SC);
  EXPECT_EQ(roundTrip(Server, Requests), Expected);
  // And again on the same (now warm) server: replays are bit-exact too.
  EXPECT_EQ(roundTrip(Server, Requests), Expected);
}

TEST(NetServer, ConcurrentClientsGetOrderedResponses) {
  ServiceConfig SC;
  SC.Jobs = 4;
  TestServer Server(SC);

  constexpr int NumClients = 8, PerClient = 20;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Clients;
  for (int C = 0; C < NumClients; ++C) {
    Clients.emplace_back([&Server, &Failures, C] {
      std::string Batch;
      for (int I = 0; I < PerClient; ++I)
        Batch += "{\"source\": \"loop i = 2, n\\n  x[i] = x[i-1] + u[i+" +
                 std::to_string(C) + "] * " + std::to_string(I + 1) +
                 ".5\\nend\"}\n";
      const std::string Stream = roundTrip(Server, Batch);
      std::istringstream In(Stream);
      std::string Line;
      int Index = 0;
      while (std::getline(In, Line)) {
        if (Line.rfind("{\"index\":" + std::to_string(Index) + ",", 0) !=
                0 ||
            Line.find("\"status\":\"ok\"") == std::string::npos)
          Failures.fetch_add(1);
        ++Index;
      }
      if (Index != PerClient)
        Failures.fetch_add(1);
    });
  }
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Server.Svc.metrics().counter("net_accepted"), NumClients);
  EXPECT_EQ(Server.Svc.metrics().counter("net_responses"),
            NumClients * PerClient);
  EXPECT_EQ(Server.Svc.metrics().counter("net_shed"), 0);
}

TEST(NetServer, OverloadShedsBeyondBoundedQueue) {
  ServiceConfig SC;
  SC.Jobs = 1;
  ServerConfig NC;
  NC.Workers = 1;
  NC.MaxQueueDepth = 1;
  // Pin the pre-ladder behavior: no slack band, no cached rung, so
  // everything past the queue bound sheds immediately.
  NC.SlackQueueDepth = 0;
  NC.CachedFallback = false;
  NC.EnableTestCommands = true;
  TestServer Server(SC, NC);

  JsonlClient Client = connectTo(Server);
  std::string Err;
  // Occupy the only worker...
  ASSERT_TRUE(Client.sendLine("{\"cmd\": \"sleep_ms\", \"ms\": 400}", Err));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...then burst: one request fills the queue, the rest must shed.
  constexpr int Burst = 8;
  std::string Batch;
  for (int I = 0; I < Burst; ++I)
    Batch += "{\"kernel\": \"daxpy\"}\n";
  ASSERT_TRUE(Client.sendRaw(Batch, Err));
  Client.shutdownWrite();

  std::vector<std::string> Lines;
  std::string Line;
  while (Client.recvLine(Line, Err))
    Lines.push_back(Line);
  EXPECT_TRUE(Err.empty()) << Err;

  // Every request got exactly one response, in request order.
  ASSERT_EQ(Lines.size(), static_cast<size_t>(Burst + 1));
  for (size_t I = 0; I < Lines.size(); ++I)
    EXPECT_EQ(Lines[I].rfind("{\"index\":" + std::to_string(I) + ",", 0),
              0u)
        << Lines[I];
  EXPECT_NE(Lines[0].find("\"slept_ms\":400"), std::string::npos);
  int Shed = 0;
  for (const std::string &L : Lines)
    Shed += L.find("\"status\":\"shed\"") != std::string::npos;
  // 7 of 8 shed when the burst lands while the worker sleeps; allow a
  // small timing margin but require real shedding.
  EXPECT_GE(Shed, 6);
  EXPECT_EQ(Server.Svc.metrics().counter("net_shed"), Shed);
  EXPECT_GE(Server.Svc.metrics().counter("net_requests"), Burst + 1);
}

TEST(NetServer, OverloadLadderDegradesBeforeShedding) {
  ServiceConfig SC;
  SC.Jobs = 1;
  ServerConfig NC;
  NC.Workers = 1;
  NC.MaxQueueDepth = 1;
  NC.SlackQueueDepth = 2;
  NC.CachedFallback = true;
  NC.EnableTestCommands = true;
  TestServer Server(SC, NC);

  const std::string Warm = "{\"kernel\": \"daxpy\", \"engine\": \"bnb\"}";
  JsonlClient Client = connectTo(Server);
  std::string Err, Line;
  // Warm the cache at full fidelity: an undegraded exact answer.
  ASSERT_TRUE(Client.sendLine(Warm, Err));
  ASSERT_TRUE(Client.recvLine(Line, Err));
  ASSERT_NE(Line.find("\"tier\":\"exact\""), std::string::npos) << Line;
  ASSERT_NE(Line.find("\"proto\":1"), std::string::npos) << Line;

  // Occupy the only worker...
  ASSERT_TRUE(Client.sendLine("{\"cmd\": \"sleep_ms\", \"ms\": 600}", Err));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...then burst nine requests. Admission walks the ladder
  // deterministically while the worker sleeps: one full-fidelity (queue
  // slot) replays the warm exact answer; two land in the slack band —
  // exact requests with no cached exact answer, so they degrade to the
  // slack heuristic; the rest hit the cached rung, which answers the warm
  // replays from cache and sheds only the cold miss.
  const std::string ColdSlack =
      "{\"source\": \"loop i = 2, n\\n  z[i] = z[i-1] * 0.5 + "
      "u[i]\\nend\", \"engine\": \"bnb\"}";
  std::string Batch = Warm + "\n" + ColdSlack + "\n" + ColdSlack + "\n";
  for (int I = 0; I < 5; ++I)
    Batch += Warm + "\n";
  Batch += "{\"source\": \"loop i = 2, n\\n  y[i] = y[i-1] * 0.75 + "
           "u[i]\\nend\", \"engine\": \"bnb\", \"id\": \"cold1\"}\n";
  ASSERT_TRUE(Client.sendRaw(Batch, Err));
  Client.shutdownWrite();

  std::vector<std::string> Lines;
  while (Client.recvLine(Line, Err))
    Lines.push_back(Line);
  EXPECT_TRUE(Err.empty()) << Err;

  // sleep ack + 9 burst responses, in request order.
  ASSERT_EQ(Lines.size(), 10u);
  for (size_t I = 0; I < Lines.size(); ++I)
    EXPECT_EQ(Lines[I].rfind("{\"index\":" + std::to_string(I + 1) + ",", 0),
              0u)
        << Lines[I];
  EXPECT_NE(Lines[0].find("\"slept_ms\":600"), std::string::npos);

  int Exact = 0, Slack = 0, Cached = 0, Shed = 0, LastRank = 0;
  for (size_t I = 1; I < Lines.size(); ++I) {
    const WireResponseView V = classifyResponseLine(Lines[I]);
    ASSERT_TRUE(V.HasTier) << Lines[I];
    Exact += V.Tier == ServiceTier::Exact;
    Slack += V.Tier == ServiceTier::Slack;
    Cached += V.Tier == ServiceTier::Cached;
    Shed += V.Tier == ServiceTier::Shed;
    // The ladder only ever descends across a burst: exact, then slack,
    // then cached, then shed.
    const int Rank = static_cast<int>(V.Tier);
    EXPECT_GE(Rank, LastRank) << Lines[I];
    LastRank = Rank;
  }
  EXPECT_EQ(Exact, 1);
  EXPECT_EQ(Slack, 2);
  EXPECT_EQ(Cached, 5);
  EXPECT_EQ(Shed, 1);
  // Slack-tier answers to an exact request are marked degraded.
  EXPECT_NE(Lines[2].find("\"degraded\":true"), std::string::npos)
      << Lines[2];
  // The shed line is structured and echoes the request id.
  EXPECT_NE(Lines[9].find("\"status\":\"shed\""), std::string::npos);
  EXPECT_NE(Lines[9].find("\"error_code\":\"overloaded\""),
            std::string::npos);
  EXPECT_NE(Lines[9].find("\"id\":\"cold1\""), std::string::npos);

  const MetricsRegistry &M = Server.Svc.metrics();
  EXPECT_EQ(M.counter("net_slack_admits"), 2);
  EXPECT_EQ(M.counter("net_cached_answers"), 5);
  EXPECT_EQ(M.counter("net_shed"), 1);
  EXPECT_EQ(M.counter("responses_tier_cached"), 5);
  EXPECT_GE(M.counter("responses_tier_slack"), 2);
  EXPECT_GE(M.counter("responses_tier_exact"), 1);
  EXPECT_EQ(M.counter("requests_cached_only_misses"), 1);
}

TEST(NetServer, ShardedServerKeepsPerConnectionByteIdentity) {
  const std::string Requests = requestCorpus();

  // Reference: the stdin pipe on an identically configured service.
  ServiceConfig SC;
  SC.Jobs = 4;
  std::string Expected;
  {
    SchedulingService Pipe(SC);
    std::istringstream In(Requests);
    std::ostringstream Out;
    Pipe.processJsonl(In, Out);
    Expected = Out.str();
  }
  ASSERT_FALSE(Expected.empty());

  ServerConfig NC;
  NC.IoShards = 4;
  TestServer Server(SC, NC);
  ASSERT_GT(Server.port(), 0);

  // Many concurrent connections land on different shards (the kernel
  // spreads SO_REUSEPORT accepts); every stream must still be identical
  // to the single-threaded pipe, byte for byte.
  constexpr int NumClients = 12;
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Clients;
  for (int C = 0; C < NumClients; ++C)
    Clients.emplace_back([&Server, &Requests, &Expected, &Mismatches] {
      if (roundTrip(Server, Requests) != Expected)
        Mismatches.fetch_add(1);
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
  EXPECT_EQ(Server.Svc.metrics().counter("net_accepted"), NumClients);
  EXPECT_EQ(Server.Svc.metrics().counter("net_shed"), 0);
}

TEST(NetServer, MetricsCommandReturnsOneLineDocument) {
  ServiceConfig SC;
  SC.Jobs = 2;
  TestServer Server(SC);
  const std::string Stream = roundTrip(
      Server, "{\"kernel\": \"daxpy\"}\n{\"cmd\": \"metrics\"}\n");
  std::istringstream In(Stream);
  std::string First, Second;
  ASSERT_TRUE(std::getline(In, First));
  ASSERT_TRUE(std::getline(In, Second));
  EXPECT_NE(First.find("\"status\":\"ok\""), std::string::npos);
  // The metrics document arrives second (ordering holds for control
  // lines too) and carries counters, gauges, and the store section.
  EXPECT_EQ(Second.rfind("{\"jobs\":", 0), 0u) << Second;
  EXPECT_NE(Second.find("\"counters\""), std::string::npos);
  EXPECT_NE(Second.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Second.find("\"store\""), std::string::npos);
  EXPECT_NE(Second.find("\"net_requests\": 2"), std::string::npos);
  // Unknown commands error without killing the connection.
  const std::string Bad =
      roundTrip(Server, "{\"cmd\": \"frobnicate\"}\n{\"kernel\": \"daxpy\"}\n");
  EXPECT_NE(Bad.find("unknown cmd"), std::string::npos);
  EXPECT_NE(Bad.find("\"status\":\"ok\""), std::string::npos);
}

TEST(NetServer, GracefulDrainAnswersEverythingInFlight) {
  ServiceConfig SC;
  SC.Jobs = 1;
  ServerConfig NC;
  NC.Workers = 1;
  NC.EnableTestCommands = true;
  NC.DrainTimeoutMs = 10000;
  TestServer Server(SC, NC);

  JsonlClient Client = connectTo(Server);
  std::string Err;
  ASSERT_TRUE(Client.sendLine("{\"cmd\": \"sleep_ms\", \"ms\": 300}", Err));
  ASSERT_TRUE(Client.sendRaw("{\"kernel\": \"daxpy\"}\n"
                             "{\"kernel\": \"dscale\"}\n"
                             "{\"kernel\": \"ll1_hydro\"}\n",
                             Err));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Server.Srv.requestStop(); // SIGTERM equivalent, mid-flight
  Client.shutdownWrite();

  std::vector<std::string> Lines;
  std::string Line;
  while (Client.recvLine(Line, Err))
    Lines.push_back(Line);
  EXPECT_TRUE(Err.empty()) << Err;
  ASSERT_EQ(Lines.size(), 4u); // nothing admitted was dropped
  for (size_t I = 0; I < Lines.size(); ++I)
    EXPECT_EQ(Lines[I].rfind("{\"index\":" + std::to_string(I) + ",", 0),
              0u);
  Server.stop();
  EXPECT_FALSE(Server.Srv.running());
}

TEST(NetServer, ConnectionsBeyondCapAreRejected) {
  ServerConfig NC;
  NC.MaxConnections = 2;
  TestServer Server(ServiceConfig(), NC);

  JsonlClient A = connectTo(Server), B = connectTo(Server);
  std::string Err, Line;
  // Prove both are established end to end.
  ASSERT_TRUE(A.sendLine("{\"kernel\": \"daxpy\"}", Err));
  ASSERT_TRUE(A.recvLine(Line, Err));
  ASSERT_TRUE(B.sendLine("{\"kernel\": \"daxpy\"}", Err));
  ASSERT_TRUE(B.recvLine(Line, Err));
  // The third connection is accepted and immediately closed.
  JsonlClient C = connectTo(Server);
  EXPECT_FALSE(C.recvLine(Line, Err));
  EXPECT_TRUE(Err.empty()) << Err; // clean EOF, not an error
  EXPECT_EQ(Server.Svc.metrics().counter("net_rejected"), 1);
}

TEST(NetServer, WarmRestartAnswersFromPersistentStore) {
  const std::string StorePath =
      testing::TempDir() + "lsms_net_restart_store.log";
  std::remove(StorePath.c_str());
  const std::string Requests =
      "{\"kernel\": \"ll1_hydro\", \"engine\": \"bnb\"}\n"
      "{\"kernel\": \"ll5_tridiag\", \"engine\": \"bnb\"}\n"
      "{\"source\": \"loop i = 2, n\\n  x[i] = x[i-1] * 0.25 + u[i]\\nend\","
      " \"engine\": \"bnb\"}\n";

  ServiceConfig SC;
  SC.Jobs = 2;
  SC.StorePath = StorePath;
  std::string Cold;
  {
    TestServer Server(SC);
    ASSERT_TRUE(Server.Svc.storeOpen()) << Server.Svc.storeError();
    Cold = roundTrip(Server, Requests);
    EXPECT_EQ(Server.Svc.storeStats().RecoveredRecords, 0);
  } // server stops, service drains, store closes

  TestServer Restarted(SC);
  ASSERT_TRUE(Restarted.Svc.storeOpen()) << Restarted.Svc.storeError();
  EXPECT_EQ(Restarted.Svc.storeStats().RecoveredRecords, 3);
  const std::string Warm = roundTrip(Restarted, Requests);
  EXPECT_EQ(Warm, Cold); // recovered answers are byte-identical
  EXPECT_EQ(Restarted.Svc.metrics().counter("store_hits"), 3);
  // Nothing was recomputed, so nothing new was written through.
  EXPECT_EQ(Restarted.Svc.metrics().counter("store_writes"), 0);
  std::remove(StorePath.c_str());
}
