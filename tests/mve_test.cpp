//===----------------------------------------------------------------------===//
/// \file Tests for modulo variable expansion planning: slot counts must
/// divide the kernel unroll factor and keep same-register instances from
/// overlapping; MVE never needs fewer registers than MaxLive.
//===----------------------------------------------------------------------===//

#include "codegen/ModuloVariableExpansion.h"
#include "core/ModuloScheduler.h"
#include "workloads/Kernels.h"
#include "workloads/RandomLoop.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

} // namespace

TEST(Mve, SampleLoopPlan) {
  const LoopBody Body = buildSampleLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  const MveInfo Info = planMve(Body, Sched);
  ASSERT_TRUE(Info.Success);
  // x and y live ~2.5 II each -> at least 3 kernel copies.
  EXPECT_GE(Info.UnrollFactor, 2);
  EXPECT_EQ(validateMve(Body, Sched, RegClass::RR, Info), "");
  EXPECT_GE(Info.TotalRegisters, Info.MaxLive);
  EXPECT_EQ(Info.ExpandedKernelOps,
            static_cast<long>(Info.UnrollFactor) * Body.numMachineOps());
}

TEST(Mve, LongLoadLifetimesForceExpansion) {
  // daxpy at II=2 keeps 13-cycle loads live ~7 II: deep expansion.
  const LoopBody Body = buildDaxpyLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  const MveInfo Info = planMve(Body, Sched);
  ASSERT_TRUE(Info.Success);
  EXPECT_GE(Info.UnrollFactor, 6);
  EXPECT_EQ(validateMve(Body, Sched, RegClass::RR, Info), "");
}

TEST(Mve, FailedScheduleRejected) {
  const LoopBody Body = buildDaxpyLoop();
  Schedule Bad;
  const MveInfo Info = planMve(Body, Bad);
  EXPECT_FALSE(Info.Success);
  EXPECT_NE(validateMve(Body, Bad, RegClass::RR, Info), "");
}

TEST(Mve, AllKernelsValidate) {
  for (const LoopBody &Body : buildKernelSuite()) {
    const Schedule Sched = scheduleLoop(Body, machine());
    ASSERT_TRUE(Sched.Success) << Body.Name;
    const MveInfo Info = planMve(Body, Sched);
    ASSERT_TRUE(Info.Success) << Body.Name;
    EXPECT_EQ(validateMve(Body, Sched, RegClass::RR, Info), "") << Body.Name;
    EXPECT_GE(Info.TotalRegisters, Info.MaxLive) << Body.Name;
  }
}

class MveProperty : public ::testing::TestWithParam<int> {};

TEST_P(MveProperty, RandomLoopsValidate) {
  RandomLoopConfig Config;
  Config.TargetOps = 22;
  const LoopBody Body =
      generateRandomLoop(static_cast<uint64_t>(GetParam()) + 6100, Config);
  const Schedule Sched = scheduleLoop(Body, machine());
  if (!Sched.Success)
    return;
  const MveInfo Info = planMve(Body, Sched);
  ASSERT_TRUE(Info.Success) << Body.Source;
  EXPECT_EQ(validateMve(Body, Sched, RegClass::RR, Info), "") << Body.Source;
  // Every slot count divides the unroll factor.
  for (const Value &V : Body.Values) {
    const int Slots = Info.Slots[static_cast<size_t>(V.Id)];
    if (Slots > 0) {
      EXPECT_EQ(Info.UnrollFactor % Slots, 0) << Body.Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MveProperty, ::testing::Range(1, 31));
