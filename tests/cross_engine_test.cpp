//===----------------------------------------------------------------------===//
/// \file Differential tests between the two exact engines. Branch-and-bound
/// and the SAT encoding are independent complete decision procedures for
/// the same fixed-II schedulability question, so on every loop and every II
/// their verdicts must agree exactly (whenever neither hits its budget),
/// and every schedule the SAT engine decodes must be validator-clean. The
/// sweeps mirror the MinDist differential tests: kernel suite plus 200
/// seeded random loops, II in [max(1, MII-1), MII+3].
//===----------------------------------------------------------------------===//

#include "bounds/Bounds.h"
#include "core/Validate.h"
#include "exact/ExactEngine.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

/// Runs one engine at a fixed II; on success asserts the schedule is legal
/// and returns it through \p Times.
ExactStatus runEngine(const DepGraph &Graph, int II, ExactEngineKind Engine,
                      std::vector<int> &Times) {
  ExactOptions Options;
  Options.Engine = Engine;
  MinDistMatrix MinDist;
  ExactEngineStats Stats;
  const ExactStatus St =
      solveAtII(Graph, II, Options, MinDist, Times, Stats);
  if (St == ExactStatus::Optimal) {
    Schedule Sched;
    Sched.Success = true;
    Sched.II = II;
    Sched.Times = Times;
    EXPECT_EQ(validateSchedule(Graph, Sched), "")
        << Graph.body().Name << " II=" << II << " engine="
        << exactEngineName(Engine);
  }
  return St;
}

/// Sweeps II over [max(1, MII-1), MII+3] and checks verdict parity.
/// Starting below MII exercises Infeasible agreement (including the
/// positive-cycle rejection below RecMII, which both engines share).
void expectEnginesAgree(const LoopBody &Body) {
  const DepGraph Graph(Body, machine());
  const MIIBounds Bounds = computeMII(Graph);
  for (int II = std::max(1, Bounds.MII - 1); II <= Bounds.MII + 3; ++II) {
    std::vector<int> BnbTimes, SatTimes;
    const ExactStatus Bnb =
        runEngine(Graph, II, ExactEngineKind::BranchAndBound, BnbTimes);
    const ExactStatus Sat =
        runEngine(Graph, II, ExactEngineKind::Sat, SatTimes);
    if (Bnb == ExactStatus::Timeout || Sat == ExactStatus::Timeout)
      continue; // a budgeted engine proves nothing either way
    ASSERT_EQ(Bnb, Sat) << Body.Name << " II=" << II
                        << ": bnb=" << exactStatusName(Bnb)
                        << " sat=" << exactStatusName(Sat);
  }
}

/// Sweeps II over [MII, MII+2] and checks that whenever BOTH engines
/// certify a minimized MaxLive, the two proofs are mutually consistent:
/// certificates of the same claim (two family proofs, or MinAvg met on
/// both sides) must name the same value, and a MinAvg-met global value —
/// which may come from outside the family — can only sit at or below a
/// certified family minimum. Any violation means one engine's proof is
/// wrong. Uncertified outcomes (budget, or only an out-of-family
/// incumbent) are skipped: they make no minimality claim.
void expectCertifiedMaxLiveAgrees(const LoopBody &Body) {
  const DepGraph Graph(Body, machine());
  const MIIBounds Bounds = computeMII(Graph);
  for (int II = Bounds.MII; II <= Bounds.MII + 2; ++II) {
    ExactOptions Bnb;
    ExactOptions Sat;
    Sat.Engine = ExactEngineKind::Sat;
    const MaxLiveOutcome B = minimizeMaxLiveAtII(Graph, II, Bnb);
    const MaxLiveOutcome S = minimizeMaxLiveAtII(Graph, II, Sat);
    if (B.Status == ExactStatus::Timeout || S.Status == ExactStatus::Timeout)
      continue;
    ASSERT_EQ(B.Status, S.Status)
        << Body.Name << " II=" << II << ": bnb=" << exactStatusName(B.Status)
        << " sat=" << exactStatusName(S.Status);
    ASSERT_TRUE(certifiedMaxLiveConsistent(B.MaxLive, B.Certificate,
                                           S.MaxLive, S.Certificate))
        << Body.Name << " II=" << II << ": bnb " << B.MaxLive << " ("
        << maxLiveCertificateName(B.Certificate) << ") vs sat " << S.MaxLive
        << " (" << maxLiveCertificateName(S.Certificate) << ")";
    // Same-kind certificates are the strongest case: both name the same
    // minimum, so the values must be equal outright.
    if (maxLiveCertificatesAgree(B.Certificate, S.Certificate) &&
        B.Certificate != MaxLiveCertificate::None) {
      ASSERT_EQ(B.MaxLive, S.MaxLive)
          << Body.Name << " II=" << II << ": bnb "
          << maxLiveCertificateName(B.Certificate) << " vs sat "
          << maxLiveCertificateName(S.Certificate);
    }
  }
}

} // namespace

TEST(CrossEngine, KernelSuiteVerdictParity) {
  for (const LoopBody &Body : buildKernelSuite())
    expectEnginesAgree(Body);
}

TEST(CrossEngine, RandomLoopsVerdictParity) {
  const std::vector<LoopBody> Suite =
      buildOracleSuite(/*Count=*/200, /*MinOps=*/3, /*MaxOps=*/20,
                       /*Seed=*/0xD1FF, /*Jobs=*/1);
  ASSERT_EQ(Suite.size(), 200u);
  for (const LoopBody &Body : Suite)
    expectEnginesAgree(Body);
}

TEST(CrossEngine, LadderAgreesOnMinimalII) {
  // Full scheduleLoopExact with either engine must find the same minimal II
  // (when neither run times out anywhere on the ladder).
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, machine());
    ExactOptions Bnb;
    ExactOptions Sat;
    Sat.Engine = ExactEngineKind::Sat;
    const ExactResult RB = scheduleLoopExact(Graph, Bnb);
    const ExactResult RS = scheduleLoopExact(Graph, Sat);
    EXPECT_EQ(RS.Engine, ExactEngineKind::Sat);
    if (RB.Status == ExactStatus::Timeout || RB.Status == ExactStatus::Feasible ||
        RS.Status == ExactStatus::Timeout || RS.Status == ExactStatus::Feasible)
      continue;
    ASSERT_EQ(RB.Status, RS.Status) << Body.Name;
    if (RB.Status == ExactStatus::Optimal) {
      EXPECT_EQ(RB.Sched.II, RS.Sched.II) << Body.Name;
    }
  }
}

TEST(CrossEngine, KernelSuiteCertifiedMaxLiveParity) {
  for (const LoopBody &Body : buildKernelSuite())
    expectCertifiedMaxLiveAgrees(Body);
}

TEST(CrossEngine, RandomLoopsCertifiedMaxLiveParity) {
  // A smaller, smaller-bodied sweep than the verdict-parity one: each loop
  // runs two full minimization passes per II here, not just feasibility.
  const std::vector<LoopBody> Suite =
      buildOracleSuite(/*Count=*/60, /*MinOps=*/3, /*MaxOps=*/12,
                       /*Seed=*/0xCE27, /*Jobs=*/1);
  ASSERT_EQ(Suite.size(), 60u);
  for (const LoopBody &Body : Suite)
    expectCertifiedMaxLiveAgrees(Body);
}

TEST(CrossEngine, SatEngineReportsCdclEffort) {
  // The unified stats must carry the SAT counters through the neutral API.
  const LoopBody Body = buildKernelSuite().front();
  const DepGraph Graph(Body, machine());
  ExactOptions Options;
  Options.Engine = ExactEngineKind::Sat;
  const ExactResult R = scheduleLoopExact(Graph, Options);
  ASSERT_TRUE(R.Status == ExactStatus::Optimal ||
              R.Status == ExactStatus::Feasible);
  EXPECT_GT(R.EngineStats.SatVariables, 0);
  EXPECT_GT(R.EngineStats.SatClauses, 0);
  EXPECT_GE(R.EngineStats.Decisions, 0);
  EXPECT_EQ(R.NodesExplored, R.EngineStats.Conflicts);
}

TEST(CrossEngine, EngineNamesRoundTrip) {
  EXPECT_STREQ(exactEngineName(ExactEngineKind::BranchAndBound), "bnb");
  EXPECT_STREQ(exactEngineName(ExactEngineKind::Sat), "sat");
  ExactEngineKind E = ExactEngineKind::BranchAndBound;
  EXPECT_TRUE(parseExactEngine("sat", E));
  EXPECT_EQ(E, ExactEngineKind::Sat);
  EXPECT_TRUE(parseExactEngine("bnb", E));
  EXPECT_EQ(E, ExactEngineKind::BranchAndBound);
  EXPECT_FALSE(parseExactEngine("ilp", E));
  EXPECT_EQ(E, ExactEngineKind::BranchAndBound);
}
