//===----------------------------------------------------------------------===//
/// \file Tests for the canonical loop fingerprints behind the scheduling
/// service's cache (service/LoopKey.h): isomorphic renumberings of a loop
/// body must hash equal and rebuild byte-identical canonical bodies, while
/// semantic mutations (omegas, dependence latencies, opcodes) must change
/// the key. Exercised over every suite kernel and a seeded random corpus.
//===----------------------------------------------------------------------===//

#include "service/LoopKey.h"

#include "frontend/LoopCompiler.h"
#include "support/Rng.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

using namespace lsms;

namespace {

/// Randomly renumbers operations and values of \p Body (Start, Stop, and
/// BrTop keep their ids — BrTop because LoopBody records it by id with no
/// setter — everything else moves) and shuffles the memory-dependence
/// list. The result is isomorphic to the input and passes verify().
LoopBody permuteLoopBody(const LoopBody &Body, Rng &R) {
  const int NumOps = Body.numOps();
  std::vector<int> OpPerm(static_cast<size_t>(NumOps));
  std::iota(OpPerm.begin(), OpPerm.end(), 0);
  std::vector<int> Movable;
  for (int I = 2; I < NumOps; ++I)
    if (I != Body.brTopOp())
      Movable.push_back(I);
  std::vector<int> Shuffled = Movable;
  for (size_t I = Shuffled.size(); I > 1; --I)
    std::swap(Shuffled[I - 1], Shuffled[R.nextBelow(I)]);
  for (size_t I = 0; I < Movable.size(); ++I)
    OpPerm[static_cast<size_t>(Movable[I])] = Shuffled[I];

  std::vector<int> ValuePerm(static_cast<size_t>(Body.numValues()));
  std::iota(ValuePerm.begin(), ValuePerm.end(), 0);
  for (size_t I = ValuePerm.size(); I > 1; --I)
    std::swap(ValuePerm[I - 1], ValuePerm[R.nextBelow(I)]);

  LoopBody Out = Body;
  Out.Ops.assign(static_cast<size_t>(NumOps), Operation());
  for (int I = 0; I < NumOps; ++I) {
    Operation Op = Body.op(I);
    Op.Id = OpPerm[static_cast<size_t>(I)];
    for (Use &U : Op.Operands)
      U.Value = ValuePerm[static_cast<size_t>(U.Value)];
    if (Op.Result >= 0)
      Op.Result = ValuePerm[static_cast<size_t>(Op.Result)];
    if (Op.PredValue >= 0)
      Op.PredValue = ValuePerm[static_cast<size_t>(Op.PredValue)];
    Out.Ops[static_cast<size_t>(Op.Id)] = std::move(Op);
  }
  Out.Values.assign(static_cast<size_t>(Body.numValues()), Value());
  for (int V = 0; V < Body.numValues(); ++V) {
    Value Val = Body.value(V);
    Val.Id = ValuePerm[static_cast<size_t>(V)];
    Val.Def = OpPerm[static_cast<size_t>(Val.Def)];
    Out.Values[static_cast<size_t>(Val.Id)] = std::move(Val);
  }
  for (MemDep &D : Out.MemDeps) {
    D.Src = OpPerm[static_cast<size_t>(D.Src)];
    D.Dst = OpPerm[static_cast<size_t>(D.Dst)];
  }
  for (size_t I = Out.MemDeps.size(); I > 1; --I)
    std::swap(Out.MemDeps[I - 1], Out.MemDeps[R.nextBelow(I)]);
  return Out;
}

std::string printed(const LoopBody &Body) {
  std::ostringstream OS;
  Body.print(OS);
  return OS.str();
}

void expectInvariantUnderRenumbering(const LoopBody &Body, uint64_t Seed) {
  const LoopKey Key = canonicalLoopKey(Body);
  const std::string Canon = printed(canonicalLoopBody(Body, Key));
  Rng R(Seed);
  for (int Trial = 0; Trial < 3; ++Trial) {
    const LoopBody Permuted = permuteLoopBody(Body, R);
    ASSERT_EQ(Permuted.verify(), "") << Body.Name;
    const LoopKey PermKey = canonicalLoopKey(Permuted);
    EXPECT_EQ(Key.Hi, PermKey.Hi) << Body.Name;
    EXPECT_EQ(Key.Lo, PermKey.Lo) << Body.Name;
    // Isomorphic inputs must rebuild the SAME canonical body, not merely
    // hash-equal ones: the service schedules this body and remaps.
    EXPECT_EQ(Canon, printed(canonicalLoopBody(Permuted, PermKey)))
        << Body.Name;
  }
}

LoopBody compileKernel(const NamedKernel &K) {
  LoopBody Body;
  const std::string Err = compileLoop(K.Source, K.Name, Body);
  EXPECT_EQ(Err, "") << K.Name;
  return Body;
}

TEST(LoopKeyTest, SuiteKernelsInvariantUnderRenumbering) {
  uint64_t Seed = 0x100f;
  for (const NamedKernel &K : kernelSources())
    expectInvariantUnderRenumbering(compileKernel(K), Seed++);
}

TEST(LoopKeyTest, RandomLoopsInvariantUnderRenumbering) {
  const std::vector<LoopBody> Suite = buildOracleSuite(25, 3, 18, 0x100b);
  uint64_t Seed = 0x200f;
  for (const LoopBody &Body : Suite)
    expectInvariantUnderRenumbering(Body, Seed++);
}

TEST(LoopKeyTest, KeyIsDeterministic) {
  for (const NamedKernel &K : kernelSources()) {
    const LoopBody Body = compileKernel(K);
    const LoopKey A = canonicalLoopKey(Body);
    const LoopKey B = canonicalLoopKey(Body);
    EXPECT_EQ(A.Hi, B.Hi);
    EXPECT_EQ(A.Lo, B.Lo);
    EXPECT_EQ(A.OpPerm, B.OpPerm);
    EXPECT_EQ(A.ValuePerm, B.ValuePerm);
  }
}

TEST(LoopKeyTest, CanonicalBodyIsAFixpoint) {
  for (const NamedKernel &K : kernelSources()) {
    const LoopBody Body = compileKernel(K);
    const LoopKey Key = canonicalLoopKey(Body);
    const LoopBody Canon = canonicalLoopBody(Body, Key);
    ASSERT_EQ(Canon.verify(), "") << K.Name;
    const LoopKey CanonKey = canonicalLoopKey(Canon);
    EXPECT_EQ(Key.Hi, CanonKey.Hi) << K.Name;
    EXPECT_EQ(Key.Lo, CanonKey.Lo) << K.Name;
    EXPECT_EQ(printed(Canon), printed(canonicalLoopBody(Canon, CanonKey)))
        << K.Name;
  }
}

/// Finds a kernel containing an operation of \p Opc; fails the test if the
/// suite has none.
LoopBody kernelWithOpcode(Opcode Opc, int &OpId) {
  for (const NamedKernel &K : kernelSources()) {
    LoopBody Body = compileKernel(K);
    for (const Operation &Op : Body.Ops)
      if (Op.Opc == Opc) {
        OpId = Op.Id;
        return Body;
      }
  }
  ADD_FAILURE() << "no suite kernel contains the requested opcode";
  return LoopBody();
}

TEST(LoopKeyTest, UseOmegaMutationChangesKey) {
  // fig1_sample carries a genuine recurrence: bump one cross-iteration
  // omega and the key must move.
  LoopBody Body = compileKernel(kernelSources().front());
  const LoopKey Before = canonicalLoopKey(Body);
  bool Mutated = false;
  for (Operation &Op : Body.Ops) {
    for (Use &U : Op.Operands)
      if (U.Omega > 0 && !Mutated) {
        U.Omega += 1;
        Mutated = true;
      }
  }
  ASSERT_TRUE(Mutated) << "expected a cross-iteration use in "
                       << Body.Name;
  const LoopKey After = canonicalLoopKey(Body);
  EXPECT_FALSE(Before == After);
}

TEST(LoopKeyTest, MemDepMutationsChangeKey) {
  LoopBody Body;
  for (const NamedKernel &K : kernelSources()) {
    Body = compileKernel(K);
    if (!Body.MemDeps.empty())
      break;
  }
  ASSERT_FALSE(Body.MemDeps.empty())
      << "no suite kernel has memory dependences";
  const LoopKey Before = canonicalLoopKey(Body);

  LoopBody OmegaMut = Body;
  OmegaMut.MemDeps[0].Omega += 1;
  EXPECT_FALSE(Before == canonicalLoopKey(OmegaMut));

  LoopBody LatencyMut = Body;
  LatencyMut.MemDeps[0].Latency += 1;
  EXPECT_FALSE(Before == canonicalLoopKey(LatencyMut));
}

TEST(LoopKeyTest, OpcodeMutationChangesKey) {
  int OpId = -1;
  LoopBody Body = kernelWithOpcode(Opcode::FloatAdd, OpId);
  ASSERT_GE(OpId, 0);
  const LoopKey Before = canonicalLoopKey(Body);
  // FloatSub has the same arity and register classes, so the mutated body
  // is still well formed — only the opcode label differs.
  Body.op(OpId).Opc = Opcode::FloatSub;
  ASSERT_EQ(Body.verify(), "");
  EXPECT_FALSE(Before == canonicalLoopKey(Body));
}

TEST(LoopKeyTest, NamesAndSourceDoNotEnterKey) {
  LoopBody Body = compileKernel(kernelSources().front());
  const LoopKey Before = canonicalLoopKey(Body);
  Body.Name = "renamed";
  Body.Source = "something else entirely";
  for (Operation &Op : Body.Ops)
    Op.Name = "op" + std::to_string(Op.Id);
  for (Value &V : Body.Values)
    V.Name = "v" + std::to_string(V.Id);
  Body.ArrayNames.assign(static_cast<size_t>(Body.NumArrays), "arr");
  const LoopKey After = canonicalLoopKey(Body);
  EXPECT_EQ(Before.Hi, After.Hi);
  EXPECT_EQ(Before.Lo, After.Lo);
}

TEST(LoopKeyTest, RawFingerprintIsOrderSensitive) {
  // The order-bound cache tier keys on the raw fingerprint: renumbering
  // must (with overwhelming probability) move it even though the canonical
  // key stays put.
  const LoopBody Body = compileKernel(kernelSources().front());
  Rng R(0xabcd);
  const LoopBody Permuted = permuteLoopBody(Body, R);
  ASSERT_EQ(Permuted.verify(), "");
  EXPECT_EQ(canonicalLoopKey(Body).Hi, canonicalLoopKey(Permuted).Hi);
  EXPECT_NE(rawLoopFingerprint(Body), rawLoopFingerprint(Permuted));
  EXPECT_EQ(rawLoopFingerprint(Body), rawLoopFingerprint(Body));
}

TEST(LoopKeyTest, MachineFingerprintSeparatesMachines) {
  const MachineModel Cydra = MachineModel::cydra5();
  EXPECT_EQ(machineFingerprint(Cydra), machineFingerprint(Cydra));
  const MachineModel Slow =
      MachineModel::withLoadLatency(Cydra.latency(Opcode::Load) + 1);
  EXPECT_NE(machineFingerprint(Cydra), machineFingerprint(Slow));
}

} // namespace
