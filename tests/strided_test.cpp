//===----------------------------------------------------------------------===//
/// \file Tests for affine strided subscripts (a[2*i+1]) and the GCD
/// dependence test: interleaved (red/black) access patterns, elimination
/// through strided stores, conservative serialization for mixed strides,
/// and full schedule + execution equivalence.
//===----------------------------------------------------------------------===//

#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "codegen/KernelCodeGen.h"
#include "frontend/LoopCompiler.h"
#include "ir/Unroll.h"
#include "vliwsim/MachineSim.h"
#include "vliwsim/Execution.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

LoopBody compileOrDie(const std::string &Src, const std::string &Name) {
  LoopBody Body;
  const std::string Err = compileLoop(Src, Name, Body);
  EXPECT_EQ(Err, "") << Src;
  EXPECT_EQ(Body.verify(), "") << Name;
  return Body;
}

void checkEquivalence(const LoopBody &Body, long Iterations = 24) {
  const DepGraph Graph(Body, machine());
  const Schedule Sched = scheduleLoop(Graph);
  ASSERT_TRUE(Sched.Success) << Body.Name;
  ASSERT_EQ(validateSchedule(Graph, Sched), "") << Body.Name;
  const ExecutionResult Ref = runReference(Body, Iterations);
  ASSERT_EQ(Ref.Error, "") << Body.Name;
  const ExecutionResult Pipe = runPipelined(Body, Sched, Iterations);
  ASSERT_EQ(compareExecutions(Ref, Pipe), "") << Body.Name;
}

int countLoads(const LoopBody &Body) {
  int N = 0;
  for (const Operation &Op : Body.Ops)
    N += Op.Opc == Opcode::Load ? 1 : 0;
  return N;
}

} // namespace

TEST(Strided, ParserAcceptsAffineSubscripts) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  x[2*i] = y[2*i+1] * 2\nend\n", "affine");
  bool SawStride2 = false;
  for (const Operation &Op : Body.Ops)
    if (isMemoryOp(Op.Opc)) {
      EXPECT_EQ(Op.ElemStride, 2);
      SawStride2 = true;
    }
  EXPECT_TRUE(SawStride2);
}

TEST(Strided, ParserRejectsBadStrides) {
  LoopBody B;
  EXPECT_NE(compileLoop("loop i = 1, n\n x[0*i] = 1\nend\n", "bad", B), "");
  LoopBody B2;
  EXPECT_NE(compileLoop("loop i = 1, n\n x[2.5*i] = 1\nend\n", "bad2", B2),
            "");
}

TEST(Strided, StridedReferencesExecuteCorrectly) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  x[2*i] = i\nend\n", "evens");
  const ExecutionResult R = runReference(Body, 5);
  ASSERT_EQ(R.Error, "");
  for (long I = 1; I <= 5; ++I) {
    EXPECT_DOUBLE_EQ(R.Arrays[0].at(2 * I), I);
    EXPECT_EQ(R.Arrays[0].count(2 * I + 1), 0u);
  }
}

TEST(Strided, EliminationThroughStridedStore) {
  // x[2*i] = x[2*i - 2] + 1: distance exactly one iteration at stride 2.
  const LoopBody Body = compileOrDie(
      "loop i = 2, n\n  x[2*i] = x[2*i-2] + 1\nend\n", "evenchain");
  EXPECT_EQ(countLoads(Body), 0) << "read should flow through a register";
  checkEquivalence(Body);
}

TEST(Strided, GcdProvesIndependenceOfRedBlack) {
  // Writes to even elements never alias reads of odd elements:
  // no memory arcs at all.
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  x[2*i] = x[2*i+1] * 0.5\nend\n", "redblack");
  EXPECT_EQ(Body.MemDeps.size(), 0u);
  EXPECT_EQ(countLoads(Body), 1); // the odd read stays a load
  checkEquivalence(Body);
}

TEST(Strided, MixedStridesSerializeConservatively) {
  // A stride-1 write may alias a stride-2 read (gcd 1 divides anything):
  // conservative omega-0/omega-1 serialization arcs must appear.
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  y[i] = x[2*i]\n  x[i] = y[i] + 1\nend\n", "mixed");
  bool SawOmega1 = false;
  for (const MemDep &D : Body.MemDeps)
    SawOmega1 |= D.Omega == 1;
  EXPECT_TRUE(SawOmega1);
  checkEquivalence(Body);
}

TEST(Strided, ExactDistanceAcrossEqualStrides) {
  // Write x[3*i], read x[3*i-6]: omega exactly 2.
  const LoopBody Body = compileOrDie(
      "loop i = 3, n\n  x[3*i] = x[3*i-6] * 0.5 + 1\nend\n", "stride3");
  EXPECT_EQ(countLoads(Body), 0);
  int MaxOmega = 0;
  for (const Operation &Op : Body.Ops)
    for (const Use &U : Op.Operands)
      MaxOmega = std::max(MaxOmega, U.Omega);
  EXPECT_EQ(MaxOmega, 2);
  checkEquivalence(Body);
}

TEST(Strided, NonDivisibleOffsetNeverAliases) {
  // Write x[2*i], read x[2*i-3]: same stride, odd distance — provably
  // disjoint, read stays a load with no arcs.
  const LoopBody Body = compileOrDie(
      "loop i = 2, n\n  x[2*i] = x[2*i-3] + 1\nend\n", "odd-even");
  EXPECT_EQ(countLoads(Body), 1);
  EXPECT_EQ(Body.MemDeps.size(), 0u);
  checkEquivalence(Body);
}

TEST(Strided, InterleavedComplexKernel) {
  // De-interleave: split a packed array into two halves.
  const LoopBody Body = compileOrDie("loop i = 1, n\n"
                                     "  re[i] = packed[2*i]\n"
                                     "  im[i] = packed[2*i+1]\n"
                                     "end\n",
                                     "deinterleave");
  checkEquivalence(Body, 30);
  const ExecutionResult R = runReference(Body, 4);
  int Packed = -1, Re = -1;
  for (size_t A = 0; A < Body.ArrayNames.size(); ++A) {
    if (Body.ArrayNames[A] == "packed")
      Packed = static_cast<int>(A);
    if (Body.ArrayNames[A] == "re")
      Re = static_cast<int>(A);
  }
  ASSERT_GE(Packed, 0);
  ASSERT_GE(Re, 0);
  for (long I = 1; I <= 4; ++I)
    EXPECT_DOUBLE_EQ(R.Arrays[static_cast<size_t>(Re)].at(I),
                     defaultMemoryInit(Packed, 2 * I));
}

TEST(Strided, MachineSimHandlesStrides) {
  // End-to-end through codegen + rotating-file machine simulation.
  const LoopBody Body = compileOrDie(
      "loop i = 2, n\n  x[2*i] = x[2*i-2] * 0.5 + y[i]\nend\n", "mach");
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  KernelCode Code;
  ASSERT_EQ(generateKernelCode(Body, Sched, Code), "");
  const ExecutionResult Ref = runReference(Body, 20);
  const ExecutionResult Mach = runKernelCode(Body, Code, 20);
  ASSERT_EQ(Mach.Error, "");
  EXPECT_EQ(compareExecutions(Ref, Mach), "");
}

TEST(Strided, UnrollComposesWithStrides) {
  // Unrolling a stride-2 loop by 2 yields stride-4 subscripts; memory
  // image must be unchanged.
  const LoopBody Body = compileOrDie(
      "loop i = 2, n\n  x[2*i] = x[2*i-2] + 1\nend\n", "us");
  const LoopBody U2 = unrollLoop(Body, 2);
  ASSERT_EQ(U2.verify(), "");
  bool SawStride4 = false;
  for (const Operation &Op : U2.Ops)
    if (isMemoryOp(Op.Opc))
      SawStride4 |= Op.ElemStride == 4;
  EXPECT_TRUE(SawStride4);

  const ExecutionResult A = runReference(Body, 12);
  ExecutionResult B = runReference(U2, 6);
  ASSERT_EQ(B.Error, "");
  ExecutionResult AA = A;
  AA.LiveOuts.clear();
  B.LiveOuts.clear();
  EXPECT_EQ(compareExecutions(AA, B), "");
}
