//===----------------------------------------------------------------------===//
/// \file Tests for straight-line slack scheduling (the paper's Section 8
/// future-work experiment): the schedule must respect same-iteration
/// dependences and resources, and the bidirectional heuristic should not
/// lose to the unidirectional one on register pressure.
//===----------------------------------------------------------------------===//

#include "core/AcyclicScheduler.h"
#include "workloads/Kernels.h"
#include "workloads/RandomLoop.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <map>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

/// Checks omega-0 dependences and per-cycle unit capacities.
void checkStraightLine(const LoopBody &Body, const AcyclicSchedule &Sched) {
  ASSERT_TRUE(Sched.Success) << Body.Name;
  const DepGraph Graph(Body, machine());
  for (const DepArc &Arc : Graph.arcs()) {
    if (Arc.Omega != 0 || Arc.Src == Body.startOp() ||
        Arc.Dst == Body.stopOp())
      continue;
    EXPECT_GE(Sched.Times[static_cast<size_t>(Arc.Dst)],
              Sched.Times[static_cast<size_t>(Arc.Src)] + Arc.Latency)
        << Body.Name;
  }
  // Unit-capacity check per cycle (no wraparound in straight-line code).
  std::map<std::pair<int, long>, int> UnitUse; // (fu kind, cycle)
  for (const Operation &Op : Body.Ops) {
    const FuKind Kind = machine().unitFor(Op.Opc);
    if (Kind == FuKind::None)
      continue;
    const long T = Sched.Times[static_cast<size_t>(Op.Id)];
    for (int R = 0; R < machine().reservationCycles(Op.Opc); ++R) {
      const int Used =
          ++UnitUse[{static_cast<int>(Kind), T + R}];
      EXPECT_LE(Used, machine().unitCount(Kind)) << Body.Name;
    }
  }
}

} // namespace

TEST(StraightLine, DaxpyBlockSchedules) {
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  const AcyclicSchedule Sched = scheduleStraightLine(Graph);
  checkStraightLine(Body, Sched);
  // Critical chain: aadd(1) + load(13) + fmul(2) + fadd(1) + store(1).
  EXPECT_GE(Sched.Length, 18);
}

TEST(StraightLine, AllKernelsSchedule) {
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, machine());
    checkStraightLine(Body, scheduleStraightLine(Graph));
  }
}

TEST(StraightLine, BidirectionalPressureNoWorseOnAggregate) {
  long Bi = 0, Uni = 0;
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, machine());
    const AcyclicSchedule A =
        scheduleStraightLine(Graph, SchedulerOptions::slack());
    const AcyclicSchedule B =
        scheduleStraightLine(Graph, SchedulerOptions::unidirectionalSlack());
    ASSERT_TRUE(A.Success && B.Success) << Body.Name;
    Bi += A.MaxLive;
    Uni += B.MaxLive;
  }
  EXPECT_LE(Bi, Uni);
}

TEST(StraightLine, MaxLiveCountsLiveIns) {
  // A block reading a value from outside (omega > 0) keeps it live from
  // entry.
  const LoopBody Body = buildDotLoop(); // s reads s@1: live-in
  const DepGraph Graph(Body, machine());
  const AcyclicSchedule Sched = scheduleStraightLine(Graph);
  ASSERT_TRUE(Sched.Success);
  EXPECT_GE(Sched.MaxLive, 2); // the live-in accumulator plus a load
}

class StraightLineProperty : public ::testing::TestWithParam<int> {};

TEST_P(StraightLineProperty, RandomBlocksScheduleAndVerify) {
  RandomLoopConfig Config;
  Config.TargetOps = 20;
  const LoopBody Body =
      generateRandomLoop(static_cast<uint64_t>(GetParam()) + 8800, Config);
  const DepGraph Graph(Body, machine());
  const AcyclicSchedule Sched = scheduleStraightLine(Graph);
  checkStraightLine(Body, Sched);
  EXPECT_GE(Sched.MaxLive, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StraightLineProperty,
                         ::testing::Range(1, 26));
