//===----------------------------------------------------------------------===//
/// \file Unit tests for SCCs, circuit enumeration, min-ratio RecMII, and
/// the MinDist relation.
//===----------------------------------------------------------------------===//

#include "graph/Circuits.h"
#include "graph/MinDist.h"
#include "graph/MinRatioCycle.h"
#include "graph/Scc.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

DepGraph makeGraph(const LoopBody &Body) {
  static MachineModel Machine = MachineModel::cydra5();
  return DepGraph(Body, Machine);
}

} // namespace

TEST(Scc, SampleLoopHasOneTwoOpComponent) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph = makeGraph(Body);
  const SccInfo Sccs = computeSccs(Graph);

  int OnRec = 0;
  for (const Operation &Op : Body.Ops)
    if (Sccs.OnRecurrence[static_cast<size_t>(Op.Id)])
      ++OnRec;
  // Exactly the two mutually recurrent fadds (address self-loops are
  // trivial circuits and do not count).
  EXPECT_EQ(OnRec, 2);
}

TEST(Scc, StraightLineLoopHasNoRecurrences) {
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph = makeGraph(Body);
  const SccInfo Sccs = computeSccs(Graph);
  for (const Operation &Op : Body.Ops)
    EXPECT_FALSE(Sccs.OnRecurrence[static_cast<size_t>(Op.Id)]) << Op.Name;
}

TEST(Circuits, SampleLoopCircuits) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph = makeGraph(Body);
  const CircuitScan Scan = findElementaryCircuits(Graph);
  EXPECT_FALSE(Scan.Truncated);

  // Self-loops: x->x, y->y, ax->ax, ay->ay. Two-node circuit: x<->y.
  int SelfLoops = 0, TwoNode = 0;
  for (const Circuit &C : Scan.Circuits) {
    if (C.Nodes.size() == 1)
      ++SelfLoops;
    if (C.Nodes.size() == 2)
      ++TwoNode;
  }
  EXPECT_EQ(SelfLoops, 4);
  EXPECT_EQ(TwoNode, 1);
}

TEST(Circuits, CircuitScanMatchesRatioAlgorithm) {
  for (const LoopBody &Body :
       {buildSampleLoop(), buildDotLoop(), buildLinearRecurrenceLoop(),
        buildDivideLoop()}) {
    const DepGraph Graph = makeGraph(Body);
    const CircuitScan Scan = findElementaryCircuits(Graph);
    ASSERT_FALSE(Scan.Truncated);
    int ByScan = 0;
    for (const Circuit &C : Scan.Circuits)
      ByScan = std::max(ByScan, circuitRecMII(Graph, C.Nodes));
    const int ByRatio = computeRecMIIByRatio(Graph);
    EXPECT_EQ(ByScan, ByRatio) << Body.Name;
  }
}

TEST(MinRatioCycle, LinearRecurrenceRecMII) {
  // x(i) = a*x(i-1) + b: fmul(2) + fadd(1) over omega 1 -> RecMII 3.
  const LoopBody Body = buildLinearRecurrenceLoop();
  const DepGraph Graph = makeGraph(Body);
  EXPECT_EQ(computeRecMIIByRatio(Graph), 3);
}

TEST(MinRatioCycle, SampleLoopRecMII) {
  // x<->y: two fadds (lat 1 each) over omega 4 -> ceil(2/4) = 1;
  // self-recurrences: lat 1 over omega 1 -> 1.
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph = makeGraph(Body);
  EXPECT_EQ(computeRecMIIByRatio(Graph), 1);
}

TEST(MinRatioCycle, PositiveCycleDetection) {
  const LoopBody Body = buildLinearRecurrenceLoop();
  const DepGraph Graph = makeGraph(Body);
  EXPECT_TRUE(hasPositiveCycle(Graph, 2));
  EXPECT_FALSE(hasPositiveCycle(Graph, 3));
}

TEST(MinDist, RejectsTooSmallII) {
  const LoopBody Body = buildLinearRecurrenceLoop();
  const DepGraph Graph = makeGraph(Body);
  MinDistMatrix M;
  EXPECT_FALSE(M.compute(Graph, 2));
  EXPECT_TRUE(M.compute(Graph, 3));
}

TEST(MinDist, DiagonalIsZeroAtFeasibleII) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph = makeGraph(Body);
  MinDistMatrix M;
  ASSERT_TRUE(M.compute(Graph, 2));
  for (int X = 0; X < M.numOps(); ++X)
    EXPECT_EQ(M.at(X, X), 0);
}

TEST(MinDist, TriangleInequalityOfLongestPaths) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph = makeGraph(Body);
  MinDistMatrix M;
  ASSERT_TRUE(M.compute(Graph, 2));
  const int N = M.numOps();
  for (int X = 0; X < N; ++X)
    for (int Y = 0; Y < N; ++Y)
      for (int Z = 0; Z < N; ++Z) {
        if (!M.connected(X, Y) || !M.connected(Y, Z))
          continue;
        ASSERT_TRUE(M.connected(X, Z));
        EXPECT_GE(M.at(X, Z), M.at(X, Y) + M.at(Y, Z));
      }
}

TEST(MinDist, StartReachesEverythingNonNegative) {
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph = makeGraph(Body);
  MinDistMatrix M;
  ASSERT_TRUE(M.compute(Graph, 3));
  for (int X = 0; X < M.numOps(); ++X) {
    ASSERT_TRUE(M.connected(Body.startOp(), X));
    EXPECT_GE(M.at(Body.startOp(), X), 0);
  }
}

TEST(MinDist, CriticalPathThroughLoad) {
  // daxpy: load (13) -> fmul (2) -> fadd (1) -> store (1) -> Stop.
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph = makeGraph(Body);
  MinDistMatrix M;
  ASSERT_TRUE(M.compute(Graph, 3));
  // Address add (1) precedes the load, so the span to Stop is
  // 1 + 13 + 2 + 1 + 1 = 18.
  EXPECT_EQ(M.at(Body.startOp(), Body.stopOp()), 18);
}

TEST(MinDist, HigherIILoosensRecurrenceDistances) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph = makeGraph(Body);
  MinDistMatrix M2, M5;
  ASSERT_TRUE(M2.compute(Graph, 2));
  ASSERT_TRUE(M5.compute(Graph, 5));
  // Distances along omega-carrying paths shrink as II grows.
  bool SomewhereSmaller = false;
  for (int X = 0; X < M2.numOps(); ++X)
    for (int Y = 0; Y < M2.numOps(); ++Y) {
      if (!M2.connected(X, Y))
        continue;
      ASSERT_TRUE(M5.connected(X, Y));
      EXPECT_LE(M5.at(X, Y), M2.at(X, Y));
      SomewhereSmaller |= M5.at(X, Y) < M2.at(X, Y);
    }
  EXPECT_TRUE(SomewhereSmaller);
}
