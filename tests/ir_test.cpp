//===----------------------------------------------------------------------===//
/// \file Unit tests for the loop IR, builder, verifier, and DepGraph.
//===----------------------------------------------------------------------===//

#include "ir/DepGraph.h"
#include "ir/IRBuilder.h"
#include "ir/LoopBody.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace lsms;

TEST(LoopBody, StartStopPseudoOpsExist) {
  LoopBody Body;
  EXPECT_EQ(Body.op(Body.startOp()).Opc, Opcode::Start);
  EXPECT_EQ(Body.op(Body.stopOp()).Opc, Opcode::Stop);
  EXPECT_EQ(Body.numMachineOps(), 0);
}

TEST(LoopBody, SampleLoopVerifies) {
  const LoopBody Body = buildSampleLoop();
  EXPECT_EQ(Body.verify(), "");
  EXPECT_EQ(Body.brTopOp(), Body.numOps() - 1);
  EXPECT_EQ(Body.NumArrays, 2);
}

TEST(LoopBody, AllKernelsVerify) {
  for (const LoopBody &Body :
       {buildSampleLoop(), buildDaxpyLoop(), buildDotLoop(),
        buildLinearRecurrenceLoop(), buildPredicatedAbsLoop(),
        buildDivideLoop()})
    EXPECT_EQ(Body.verify(), "") << Body.Name;
}

TEST(LoopBody, UsesOfFindsOperandAndPredicateSites) {
  const LoopBody Body = buildPredicatedAbsLoop();
  // Find the predicate value "p" and check it is used as a predicate.
  int P = -1;
  for (const Value &V : Body.Values)
    if (V.Name == "p")
      P = V.Id;
  ASSERT_GE(P, 0);
  const auto Sites = Body.usesOf(P);
  // Used by PredNot (operand) and the then-store (predicate).
  EXPECT_EQ(Sites.size(), 2u);
}

TEST(LoopBody, VerifierRejectsMissingBrTop) {
  LoopBody Body;
  IRBuilder B(Body);
  const int C = B.constant(1.0);
  B.emitValue(Opcode::FloatAdd, {Use{C, 0}, Use{C, 0}}, "t");
  // finish() not called: no brtop.
  EXPECT_NE(Body.verify(), "");
}

TEST(LoopBody, VerifierRejectsZeroOmegaCycle) {
  LoopBody Body;
  IRBuilder B(Body);
  const int X = B.declareValue(RegClass::RR, "x");
  const int Y =
      B.emitValue(Opcode::FloatAdd, {Use{X, 0}, Use{X, 0}}, "y");
  B.defineValue(X, Opcode::FloatMul, {Use{Y, 0}, Use{Y, 0}});
  Body.addOperation(Opcode::BrTop, {}, "brtop");
  Body.setBrTop(Body.numOps() - 1);
  const std::string Err = Body.verify();
  EXPECT_NE(Err.find("cycle"), std::string::npos) << Err;
}

TEST(LoopBody, VerifierAcceptsOmegaOneCycle) {
  const LoopBody Body = buildLinearRecurrenceLoop();
  EXPECT_EQ(Body.verify(), "");
}

TEST(LoopBody, VerifierRejectsGprWithOmega) {
  LoopBody Body;
  IRBuilder B(Body);
  const int A = B.invariant("a", 1.0);
  B.emitValue(Opcode::FloatAdd, {Use{A, 1}, Use{A, 0}}, "t");
  Body.addOperation(Opcode::BrTop, {}, "brtop");
  Body.setBrTop(Body.numOps() - 1);
  EXPECT_NE(Body.verify(), "");
}

TEST(LoopBody, VerifierRejectsBadArity) {
  LoopBody Body;
  const int Op = Body.addOperation(Opcode::FloatAdd, {}, "bad");
  const int V = Body.addValue(RegClass::RR, Op, "bad");
  Body.op(Op).Result = V;
  Body.addOperation(Opcode::BrTop, {}, "brtop");
  Body.setBrTop(Body.numOps() - 1);
  EXPECT_NE(Body.verify(), "");
}

TEST(LoopBody, PrintMentionsEveryOp) {
  const LoopBody Body = buildSampleLoop();
  std::ostringstream OS;
  Body.print(OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("fadd"), std::string::npos);
  EXPECT_NE(Out.find("store"), std::string::npos);
  EXPECT_NE(Out.find("x"), std::string::npos);
}

TEST(DepGraph, StartAndStopArcsCoverAllOps) {
  const LoopBody Body = buildDaxpyLoop();
  const MachineModel Machine = MachineModel::cydra5();
  const DepGraph Graph(Body, Machine);

  // Every op other than Start has an incoming arc from Start; every op
  // other than Stop reaches Stop directly.
  for (const Operation &Op : Body.Ops) {
    if (Op.Id != Body.startOp()) {
      bool FromStart = false;
      for (int ArcIdx : Graph.predArcs(Op.Id))
        FromStart |= Graph.arc(ArcIdx).Src == Body.startOp();
      EXPECT_TRUE(FromStart) << Op.Name;
    }
    if (Op.Id != Body.stopOp()) {
      bool ToStop = false;
      for (int ArcIdx : Graph.succArcs(Op.Id))
        ToStop |= Graph.arc(ArcIdx).Dst == Body.stopOp();
      EXPECT_TRUE(ToStop) << Op.Name;
    }
  }
}

TEST(DepGraph, FlowArcLatencyIsProducerLatency) {
  const LoopBody Body = buildDaxpyLoop();
  const MachineModel Machine = MachineModel::cydra5();
  const DepGraph Graph(Body, Machine);

  // Find the flow arc from the load lx into the multiply.
  bool Found = false;
  for (const DepArc &Arc : Graph.arcs()) {
    if (Arc.Kind != DepKind::Flow)
      continue;
    if (Body.op(Arc.Src).Opc == Opcode::Load &&
        Body.op(Arc.Dst).Opc == Opcode::FloatMul) {
      EXPECT_EQ(Arc.Latency, 13);
      EXPECT_EQ(Arc.Omega, 0);
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST(DepGraph, GprUsesCreateNoFlowArcs) {
  const LoopBody Body = buildDaxpyLoop();
  const MachineModel Machine = MachineModel::cydra5();
  const DepGraph Graph(Body, Machine);
  for (const DepArc &Arc : Graph.arcs()) {
    if (Arc.Kind == DepKind::Flow) {
      EXPECT_NE(Body.value(Arc.Value).Class, RegClass::GPR);
    }
  }
}

TEST(DepGraph, OmegaCarriedOnRecurrenceArcs) {
  const LoopBody Body = buildSampleLoop();
  const MachineModel Machine = MachineModel::cydra5();
  const DepGraph Graph(Body, Machine);
  int Omega2Arcs = 0;
  for (const DepArc &Arc : Graph.arcs())
    if (Arc.Kind == DepKind::Flow && Arc.Omega == 2)
      ++Omega2Arcs;
  // x uses y@2 and y uses x@2.
  EXPECT_EQ(Omega2Arcs, 2);
}

TEST(DepGraph, MemDepsBecomeArcs) {
  const LoopBody Body = buildPredicatedAbsLoop();
  const MachineModel Machine = MachineModel::cydra5();
  const DepGraph Graph(Body, Machine);
  bool Found = false;
  for (const DepArc &Arc : Graph.arcs())
    Found |= Arc.Kind == DepKind::Output;
  EXPECT_TRUE(Found);
}
