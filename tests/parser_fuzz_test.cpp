//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fuzz pass over the DSL parser: a seeded token mutator
/// (splice / delete / duplicate / substitute) runs over a corpus of valid
/// sources — hand-written kernels, while/indirect programs, and generator
/// output — asserting that the parser never crashes and that every
/// *accepted* mutant round-trips through the AST printer (print -> parse
/// -> structurally equal, and the second print is a fixpoint). Also pins
/// the negative grammar cases for the while-exit clause.
///
//===----------------------------------------------------------------------===//

#include "frontend/AstPrinter.h"
#include "frontend/Parser.h"
#include "support/Rng.h"
#include "workloads/RandomLoop.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

using namespace lsms;

namespace {

/// Splits source text into mutation units: identifier/number runs, single
/// punctuation characters, and newlines (statement separators, so they
/// must survive as tokens). Whitespace is dropped; rejoining inserts it.
std::vector<std::string> splitTokens(const std::string &S) {
  std::vector<std::string> Tokens;
  size_t I = 0;
  while (I < S.size()) {
    const char C = S[I];
    if (C == '\n') {
      Tokens.push_back("\n");
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
        C == '.') {
      size_t J = I;
      while (J < S.size() &&
             (std::isalnum(static_cast<unsigned char>(S[J])) ||
              S[J] == '_' || S[J] == '.'))
        ++J;
      Tokens.push_back(S.substr(I, J - I));
      I = J;
      continue;
    }
    Tokens.push_back(std::string(1, C));
    ++I;
  }
  return Tokens;
}

std::string joinTokens(const std::vector<std::string> &Tokens) {
  std::string Out;
  for (const std::string &T : Tokens) {
    if (T == "\n") {
      Out += '\n';
      continue;
    }
    if (!Out.empty() && Out.back() != '\n')
      Out += ' ';
    Out += T;
  }
  Out += '\n';
  return Out;
}

/// Applies 1-3 random token edits. All randomness comes from the xorshift
/// Rng, so every mutant is reproducible from the corpus index and round.
std::string mutate(const std::vector<std::string> &Base, Rng &R) {
  std::vector<std::string> T = Base;
  const int Edits = static_cast<int>(R.nextInRange(1, 3));
  for (int E = 0; E < Edits && !T.empty(); ++E) {
    const size_t At = static_cast<size_t>(R.nextBelow(T.size()));
    switch (R.nextBelow(4)) {
    case 0: // delete
      T.erase(T.begin() + static_cast<long>(At));
      break;
    case 1: // duplicate in place
      T.insert(T.begin() + static_cast<long>(At), T[At]);
      break;
    case 2: { // splice: move a token somewhere else
      const std::string Tok = T[At];
      T.erase(T.begin() + static_cast<long>(At));
      const size_t To = T.empty() ? 0 : static_cast<size_t>(
                                            R.nextBelow(T.size() + 1));
      T.insert(T.begin() + static_cast<long>(To), Tok);
      break;
    }
    default: // substitute with another token of the same program
      T[At] = Base[static_cast<size_t>(R.nextBelow(Base.size()))];
      break;
    }
  }
  return joinTokens(T);
}

/// The accepted-mutant obligation: printing and reparsing reproduces the
/// same program, and printing is a fixpoint.
void checkRoundTrip(const Program &P, const std::string &Origin) {
  const std::string Printed = printProgram(P);
  std::string Err;
  const std::unique_ptr<Program> Again = parseProgram(Printed, Err);
  ASSERT_NE(Again, nullptr)
      << Origin << ": printed program failed to reparse: " << Err
      << "\n--- printed ---\n"
      << Printed;
  EXPECT_TRUE(programsEqual(P, *Again)) << Origin << "\n--- printed ---\n"
                                        << Printed;
  EXPECT_EQ(printProgram(*Again), Printed) << Origin;
}

std::vector<std::string> fuzzCorpus() {
  std::vector<std::string> Corpus;
  for (const NamedKernel &K : kernelSources())
    Corpus.push_back(K.Source);
  // While-exit and data-dependent-subscript programs, so the mutator
  // exercises the irregular grammar too.
  Corpus.push_back("param s0 = 0\n"
                   "loop i = 1, n while (s0 < 8)\n"
                   "a[i] = 5\n"
                   "s0 = s0 + ld0[i]\n"
                   "end\n");
  Corpus.push_back("param q0 = 1\n"
                   "loop i = 1, n\n"
                   "b0 = in0[i] * 4\n"
                   "h0[b0] = h0[b0] + 1\n"
                   "q0 = nx0[q0]\n"
                   "end\n");
  Rng R(0xF022);
  for (int K = 0; K < 4; ++K) {
    const RandomLoopConfig Config; // default size keeps mutants fast
    Corpus.push_back(generateRandomLoopSource(R, Config));
    const IrregularLoopConfig IrrConfig;
    Corpus.push_back(generateIrregularLoopSource(R, IrrConfig).Source);
  }
  return Corpus;
}

} // namespace

TEST(ParserFuzz, CorpusParsesCleanly) {
  for (const std::string &Source : fuzzCorpus()) {
    std::string Err;
    const std::unique_ptr<Program> P = parseProgram(Source, Err);
    ASSERT_NE(P, nullptr) << Err << "\n--- source ---\n" << Source;
    checkRoundTrip(*P, "corpus");
  }
}

TEST(ParserFuzz, MutantsNeverCrashAndAcceptedOnesRoundTrip) {
  const std::vector<std::string> Corpus = fuzzCorpus();
  Rng R(0x5EED);
  long Accepted = 0, Rejected = 0;
  for (size_t C = 0; C < Corpus.size(); ++C) {
    const std::vector<std::string> Base = splitTokens(Corpus[C]);
    for (int Round = 0; Round < 60; ++Round) {
      const std::string Mutant = mutate(Base, R);
      std::string Err;
      const std::unique_ptr<Program> P = parseProgram(Mutant, Err);
      if (!P) {
        // Rejection must come with a diagnostic, not silence.
        EXPECT_FALSE(Err.empty()) << Mutant;
        ++Rejected;
        continue;
      }
      ++Accepted;
      checkRoundTrip(*P, "corpus " + std::to_string(C) + " round " +
                             std::to_string(Round));
    }
  }
  // The mutator must produce both outcomes or the pass is vacuous.
  EXPECT_GT(Accepted, 0) << "no mutant was ever accepted";
  EXPECT_GT(Rejected, 0) << "no mutant was ever rejected";
}

TEST(ParserFuzz, WhileClauseNegativeCases) {
  const struct {
    const char *Source;
    const char *ErrorNeedle;
  } Cases[] = {
      {"loop i = 1, n while (x < 1) while (y < 1)\na[i] = 1\nend\n",
       "only one while clause"},
      {"loop i = 1, n while x < 1\na[i] = 1\nend\n", "after 'while'"},
      {"loop i = 1, n while (x < 1\na[i] = 1\nend\n",
       "close the while condition"},
      {"loop i = 1, n while ()\na[i] = 1\nend\n", ""},
      {"loop i = 1, n while (x <)\na[i] = 1\nend\n", ""},
      {"loop i = 1, n while (x)\na[i] = 1\nend\n", ""},
  };
  for (const auto &Case : Cases) {
    std::string Err;
    const std::unique_ptr<Program> P = parseProgram(Case.Source, Err);
    EXPECT_EQ(P, nullptr) << Case.Source;
    EXPECT_FALSE(Err.empty()) << Case.Source;
    if (Case.ErrorNeedle[0] != '\0') {
      EXPECT_NE(Err.find(Case.ErrorNeedle), std::string::npos)
          << "wanted '" << Case.ErrorNeedle << "' in: " << Err;
    }
  }
}
