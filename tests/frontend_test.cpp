//===----------------------------------------------------------------------===//
/// \file Unit tests for the loop DSL front end: lexer, parser, if-conversion,
/// load/store elimination, and memory dependence analysis.
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/LoopCompiler.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

LoopBody compileOrDie(const std::string &Src, const std::string &Name) {
  LoopBody Body;
  const std::string Err = compileLoop(Src, Name, Body);
  EXPECT_EQ(Err, "") << Src;
  EXPECT_EQ(Body.verify(), "") << Name;
  return Body;
}

int countOpcode(const LoopBody &Body, Opcode Opc) {
  int N = 0;
  for (const Operation &Op : Body.Ops)
    if (Op.Opc == Opc)
      ++N;
  return N;
}

} // namespace

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  std::vector<Token> Tokens;
  std::string Err;
  ASSERT_TRUE(tokenize("loop i = 1, n\nx[i] = a <= 3.5 # comment\nend",
                       Tokens, Err))
      << Err;
  ASSERT_GE(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwLoop);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "i");
  bool SawLe = false, SawNumber = false;
  for (const Token &T : Tokens) {
    SawLe |= T.Kind == TokenKind::Le;
    if (T.Kind == TokenKind::Number) {
      SawNumber = true;
      EXPECT_DOUBLE_EQ(T.NumberValue, T.Text == "1" ? 1.0 : 3.5);
    }
  }
  EXPECT_TRUE(SawLe);
  EXPECT_TRUE(SawNumber);
}

TEST(Lexer, RejectsStrayCharacters) {
  std::vector<Token> Tokens;
  std::string Err;
  EXPECT_FALSE(tokenize("loop i = 1, n\nx[i] = $\nend", Tokens, Err));
  EXPECT_NE(Err.find("unexpected character"), std::string::npos);
}

TEST(Lexer, SemicolonSeparatesStatements) {
  std::vector<Token> Tokens;
  std::string Err;
  ASSERT_TRUE(tokenize("a = 1; b = 2", Tokens, Err));
  int Newlines = 0;
  for (const Token &T : Tokens)
    Newlines += T.Kind == TokenKind::Newline ? 1 : 0;
  EXPECT_GE(Newlines, 2);
}

TEST(Parser, ParsesSampleLoop) {
  std::string Err;
  const auto Prog = parseProgram(
      "loop i = 3, n\n"
      "  x[i] = x[i-1] + y[i-2]\n"
      "  y[i] = y[i-1] + x[i-2]\n"
      "end\n",
      Err);
  ASSERT_NE(Prog, nullptr) << Err;
  EXPECT_EQ(Prog->Counter, "i");
  EXPECT_EQ(Prog->First, 3);
  EXPECT_EQ(Prog->Body.size(), 2u);
  EXPECT_EQ(Prog->Body[0]->Assign.Offset, 0);
  EXPECT_TRUE(Prog->Body[0]->Assign.IsArray);
}

TEST(Parser, ParsesIfElseAndParams) {
  std::string Err;
  const auto Prog = parseProgram(
      "param a = 2.5\n"
      "loop i = 1, n\n"
      "  if (x[i] > a) then\n"
      "    y[i] = x[i]\n"
      "  else\n"
      "    y[i] = -x[i]\n"
      "  end\n"
      "end\n",
      Err);
  ASSERT_NE(Prog, nullptr) << Err;
  ASSERT_EQ(Prog->Params.size(), 1u);
  EXPECT_EQ(Prog->Params[0].first, "a");
  EXPECT_DOUBLE_EQ(Prog->Params[0].second, 2.5);
  ASSERT_EQ(Prog->Body.size(), 1u);
  EXPECT_EQ(Prog->Body[0]->Kind, StmtKind::If);
  EXPECT_EQ(Prog->Body[0]->If.Then.size(), 1u);
  EXPECT_EQ(Prog->Body[0]->If.Else.size(), 1u);
}

TEST(Parser, ReportsSyntaxErrors) {
  std::string Err;
  EXPECT_EQ(parseProgram("loop i = 1, n\nx[i] = +\nend", Err), nullptr);
  EXPECT_NE(Err.find("line 2"), std::string::npos);

  Err.clear();
  EXPECT_EQ(parseProgram("loop i = 1, n\nend", Err), nullptr);
  EXPECT_NE(Err.find("empty"), std::string::npos);

  Err.clear();
  EXPECT_EQ(parseProgram("loop i = 1, 10\nx[i] = 1\nend", Err), nullptr);
  EXPECT_NE(Err.find("'n'"), std::string::npos);
}

TEST(Parser, AcceptsDataDependentSubscript) {
  // 'x[j] = 1' is an indirect store: j is a scalar subscript (here an
  // implicitly declared loop invariant), not a parse error.
  std::string Err;
  const std::unique_ptr<Program> P =
      parseProgram("loop i = 1, n\nx[j] = 1\nend", Err);
  ASSERT_NE(P, nullptr) << Err;
  ASSERT_EQ(P->Body.size(), 1u);
  EXPECT_EQ(P->Body[0]->Assign.IndexVar, "j");
}

TEST(Parser, RejectsStridedDataDependentSubscript) {
  // Data-dependent subscripts carry no affine decoration: an offset or a
  // stride on one is a grammar error.
  std::string Err;
  EXPECT_EQ(parseProgram("loop i = 1, n\nx[j+1] = 1\nend", Err), nullptr);
  EXPECT_NE(Err.find("offset"), std::string::npos) << Err;
  Err.clear();
  EXPECT_EQ(parseProgram("loop i = 1, n\nx[2*j] = 1\nend", Err), nullptr);
}

TEST(LoopCompiler, SampleLoopEliminatesAllLoads) {
  const LoopBody Body = compileOrDie(
      "loop i = 3, n\n"
      "  x[i] = x[i-1] + y[i-2]\n"
      "  y[i] = y[i-1] + x[i-2]\n"
      "end\n",
      "sample");
  // All four reads are covered by the unconditional writes at offset 0:
  // no loads remain (Section 2.3's load/store elimination).
  EXPECT_EQ(countOpcode(Body, Opcode::Load), 0);
  EXPECT_EQ(countOpcode(Body, Opcode::Store), 2);
  EXPECT_EQ(countOpcode(Body, Opcode::FloatAdd), 2);

  // The x value is read at omega 1 (x[i-1]) and omega 2 (x[i-2]).
  int X = -1;
  for (const Value &V : Body.Values)
    if (V.Name == "x_p0")
      X = V.Id;
  ASSERT_GE(X, 0);
  EXPECT_EQ(Body.value(X).SeedArrayId, 0);
  std::vector<int> Omegas;
  for (const auto &Site : Body.usesOf(X))
    Omegas.push_back(Site.Omega);
  std::sort(Omegas.begin(), Omegas.end());
  EXPECT_EQ(Omegas, (std::vector<int>{0, 1, 2})); // store@0, x[i-1], x[i-2]
}

TEST(LoopCompiler, PureStreamKeepsLoads) {
  const LoopBody Body = compileOrDie(
      "param a = 3\n"
      "loop i = 1, n\n"
      "  z[i] = a * x[i] + y[i]\n"
      "end\n",
      "daxpy");
  EXPECT_EQ(countOpcode(Body, Opcode::Load), 2);
  EXPECT_EQ(countOpcode(Body, Opcode::Store), 1);
  EXPECT_EQ(countOpcode(Body, Opcode::FloatMul), 1);
  EXPECT_FALSE(Body.HasConditional);
}

TEST(LoopCompiler, LoadCseReusesIdenticalReads) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n"
      "  y[i] = x[i] * x[i]\n"
      "end\n",
      "square");
  EXPECT_EQ(countOpcode(Body, Opcode::Load), 1);
}

TEST(LoopCompiler, ReadBeforeWriteAtSameOffsetLoads) {
  // The read of x[i] happens before x[i] is written: it must load the
  // original memory, and the write creates an anti dependence.
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n"
      "  y[i] = x[i] + 1\n"
      "  x[i] = y[i] * 2\n"
      "end\n",
      "rbw");
  EXPECT_EQ(countOpcode(Body, Opcode::Load), 1);
  bool SawAnti = false;
  for (const MemDep &D : Body.MemDeps)
    SawAnti |= D.Kind == DepKind::Anti;
  EXPECT_TRUE(SawAnti);
}

TEST(LoopCompiler, ReadAfterWriteAtSameOffsetForwards) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n"
      "  x[i] = y[i] + 1\n"
      "  z[i] = x[i] * 2\n"
      "end\n",
      "raw");
  // x[i] is forwarded from the store's value: only the y load remains.
  EXPECT_EQ(countOpcode(Body, Opcode::Load), 1);
}

TEST(LoopCompiler, ConditionalWriteBlocksElimination) {
  const LoopBody Body = compileOrDie(
      "loop i = 2, n\n"
      "  if (y[i] > 0) then\n"
      "    x[i] = y[i]\n"
      "  end\n"
      "  z[i] = x[i-1]\n"
      "end\n",
      "condwrite");
  // x[i-1] cannot be forwarded from the conditional store; a load plus a
  // cross-iteration memory flow arc must exist.
  int Loads = 0;
  for (const Operation &Op : Body.Ops)
    if (Op.Opc == Opcode::Load && Op.ElemOffset == -1)
      ++Loads;
  EXPECT_EQ(Loads, 1);
  bool SawOmega1Flow = false;
  for (const MemDep &D : Body.MemDeps)
    SawOmega1Flow |= D.Kind == DepKind::Flow && D.Omega == 1;
  EXPECT_TRUE(SawOmega1Flow);
}

TEST(LoopCompiler, IfConversionPredicatesStores) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n"
      "  if (x[i] > 0) then\n"
      "    y[i] = x[i]\n"
      "  else\n"
      "    y[i] = -x[i]\n"
      "  end\n"
      "end\n",
      "predabs");
  EXPECT_TRUE(Body.HasConditional);
  EXPECT_EQ(Body.SourceBasicBlocks, 4);
  int PredicatedStores = 0;
  for (const Operation &Op : Body.Ops)
    if (Op.Opc == Opcode::Store && Op.PredValue >= 0)
      ++PredicatedStores;
  EXPECT_EQ(PredicatedStores, 2);
  EXPECT_EQ(countOpcode(Body, Opcode::PredNot), 1);
  // Both stores write y[i]: an output memory dependence must order them.
  bool SawOutput = false;
  for (const MemDep &D : Body.MemDeps)
    SawOutput |= D.Kind == DepKind::Output && D.Omega == 0;
  EXPECT_TRUE(SawOutput);
}

TEST(LoopCompiler, ScalarMergeUsesSelect) {
  const LoopBody Body = compileOrDie(
      "param s = 0\n"
      "loop i = 1, n\n"
      "  if (x[i] > 0) then\n"
      "    s = s + x[i]\n"
      "  end\n"
      "end\n",
      "condsum");
  EXPECT_EQ(countOpcode(Body, Opcode::Select), 1);
  // The select defines the scalar's final value: its result is the value
  // named "s", which must be live-out and seeded with the param init.
  int S = -1;
  for (const Value &V : Body.Values)
    if (V.Name == "s" && V.Class == RegClass::RR)
      S = V.Id;
  ASSERT_GE(S, 0);
  EXPECT_TRUE(Body.value(S).LiveOut);
  ASSERT_EQ(Body.value(S).Seeds.size(), 1u);
  EXPECT_DOUBLE_EQ(Body.value(S).Seeds[0], 0.0);
  EXPECT_EQ(Body.op(Body.value(S).Def).Opc, Opcode::Select);
}

TEST(LoopCompiler, AccumulatorBecomesSelfRecurrence) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n"
      "  s = s + x[i] * y[i]\n"
      "end\n",
      "dot");
  int S = -1;
  for (const Value &V : Body.Values)
    if (V.Name == "s" && V.Class == RegClass::RR)
      S = V.Id;
  ASSERT_GE(S, 0);
  // s's defining fadd uses s@1.
  const Operation &Def = Body.op(Body.value(S).Def);
  EXPECT_EQ(Def.Opc, Opcode::FloatAdd);
  bool UsesSelf = false;
  for (const Use &U : Def.Operands)
    UsesSelf |= U.Value == S && U.Omega == 1;
  EXPECT_TRUE(UsesSelf);
}

TEST(LoopCompiler, InductionVariableMaterializes) {
  const LoopBody Body = compileOrDie(
      "loop i = 5, n\n"
      "  x[i] = i * 2\n"
      "end\n",
      "iota");
  int IV = -1;
  for (const Value &V : Body.Values)
    if (V.Name == "i" && V.Class == RegClass::RR)
      IV = V.Id;
  ASSERT_GE(IV, 0);
  EXPECT_EQ(Body.op(Body.value(IV).Def).Opc, Opcode::IntAdd);
  ASSERT_EQ(Body.value(IV).Seeds.size(), 1u);
  EXPECT_DOUBLE_EQ(Body.value(IV).Seeds[0], 4.0);
}

TEST(LoopCompiler, SqrtAndDivideMapToDivider) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n"
      "  y[i] = sqrt(x[i]) / (x[i] + 1)\n"
      "end\n",
      "sqrtdiv");
  EXPECT_EQ(countOpcode(Body, Opcode::FloatSqrt), 1);
  EXPECT_EQ(countOpcode(Body, Opcode::FloatDiv), 1);
}

TEST(LoopCompiler, SemanticErrors) {
  LoopBody B1;
  EXPECT_NE(compileLoop("loop i = 1, n\n i = 3\nend", "bad1", B1), "");
  LoopBody B2;
  EXPECT_NE(compileLoop("loop i = 1, n\n x = x[i]\nend", "bad2", B2), "");
  LoopBody B3;
  EXPECT_NE(
      compileLoop("param a = 1\nparam a = 2\nloop i = 1, n\nx[i] = a\nend",
                  "bad3", B3),
      "");
}

TEST(LoopCompiler, AddressStreamsPerReference) {
  const LoopBody Body = compileOrDie(
      "loop i = 2, n\n"
      "  y[i] = x[i] + x[i-1]\n"
      "end\n",
      "stencil");
  // Address streams: x[i], x[i-1], y[i] -> three self-recurrent aadds.
  EXPECT_EQ(countOpcode(Body, Opcode::AddrAdd), 3);
}

TEST(LoopCompiler, StoreValueSeededFromArray) {
  const LoopBody Body = compileOrDie(
      "loop i = 2, n\n"
      "  x[i] = x[i-1] * 0.5\n"
      "end\n",
      "decay");
  int XS = -1;
  for (const Value &V : Body.Values)
    if (V.SeedArrayId >= 0)
      XS = V.Id;
  ASSERT_GE(XS, 0);
  EXPECT_EQ(Body.value(XS).SeedElemOffset, 0);
}
