//===----------------------------------------------------------------------===//
/// \file Tests for the rotating register allocator: conflict-freedom
/// (verified by occupancy simulation) and nearness to the MaxLive bound.
//===----------------------------------------------------------------------===//

#include "core/ModuloScheduler.h"
#include "exact/ExactEngine.h"
#include "ir/IRBuilder.h"
#include "regalloc/RotatingAllocator.h"
#include "workloads/Kernels.h"
#include "workloads/RandomLoop.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

AllocationResult allocateFor(const LoopBody &Body, RegClass Class,
                             Schedule *SchedOut = nullptr) {
  const Schedule Sched = scheduleLoop(Body, machine());
  EXPECT_TRUE(Sched.Success) << Body.Name;
  if (SchedOut)
    *SchedOut = Sched;
  return allocateRotating(Body, Sched.Times, Sched.II, Class);
}

} // namespace

TEST(RotatingAllocator, SampleLoopWithinOneOfMaxLive) {
  const LoopBody Body = buildSampleLoop();
  Schedule Sched;
  const AllocationResult Alloc = allocateFor(Body, RegClass::RR, &Sched);
  ASSERT_TRUE(Alloc.Success);
  EXPECT_EQ(validateAllocation(Body, Sched.Times, Sched.II, RegClass::RR,
                               Alloc),
            "");
  EXPECT_LE(Alloc.FileSize, Alloc.MaxLive + 1);
  EXPECT_GE(Alloc.FileSize, Alloc.MaxLive);
}

TEST(RotatingAllocator, AllKernelsAllocateCloseToMaxLive) {
  for (const LoopBody &Body : buildKernelSuite()) {
    Schedule Sched;
    const AllocationResult Alloc = allocateFor(Body, RegClass::RR, &Sched);
    ASSERT_TRUE(Alloc.Success) << Body.Name;
    EXPECT_EQ(validateAllocation(Body, Sched.Times, Sched.II, RegClass::RR,
                                 Alloc),
              "")
        << Body.Name;
    // Rau et al. [18]: end-fit/best-fit strategies stay within MaxLive+1..5.
    EXPECT_LE(Alloc.FileSize, Alloc.MaxLive + 5) << Body.Name;
  }
}

// On a schedule whose MaxLive carries a minimality certificate, the
// paper's buffer rule holds tight: the greedy rotating allocator needs at
// most certified-MaxLive + 1 registers. One regression case per suite
// kernel, so a future pressure or allocator change that loosens the bound
// names the kernel it broke.
TEST(RotatingAllocator, CertifiedKernelsWithinOneOfCertifiedMaxLive) {
  int Certified = 0;
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, machine());
    ExactOptions Options;
    Options.MinimizeMaxLive = true;
    const ExactResult Ex = scheduleLoopExact(Graph, Options);
    ASSERT_TRUE(Ex.Sched.Success) << Body.Name;
    if (!Ex.MaxLiveProven)
      continue; // only a certified value backs the buffer rule
    ++Certified;
    const AllocationResult Alloc =
        allocateRotating(Body, Ex.Sched.Times, Ex.Sched.II, RegClass::RR);
    ASSERT_TRUE(Alloc.Success) << Body.Name;
    EXPECT_EQ(validateAllocation(Body, Ex.Sched.Times, Ex.Sched.II,
                                 RegClass::RR, Alloc),
              "")
        << Body.Name;
    EXPECT_EQ(Alloc.MaxLive, Ex.MaxLive) << Body.Name
        << ": allocator and certifier disagree on the pressure itself";
    EXPECT_LE(Alloc.FileSize, Ex.MaxLive + 1)
        << Body.Name << " (certificate: "
        << maxLiveCertificateName(Ex.Certificate) << ")";
  }
  EXPECT_GT(Certified, 0)
      << "no kernel certified: the regression net is empty";
}

TEST(RotatingAllocator, IcrPredicatesAllocate) {
  const LoopBody Body = buildPredicatedAbsLoop();
  Schedule Sched;
  const AllocationResult Alloc = allocateFor(Body, RegClass::ICR, &Sched);
  ASSERT_TRUE(Alloc.Success);
  EXPECT_EQ(validateAllocation(Body, Sched.Times, Sched.II, RegClass::ICR,
                               Alloc),
            "");
}

TEST(RotatingAllocator, EmptyClassYieldsEmptyAllocation) {
  const LoopBody Body = buildDaxpyLoop(); // no ICR values at all
  Schedule Sched;
  const AllocationResult Alloc = allocateFor(Body, RegClass::ICR, &Sched);
  EXPECT_TRUE(Alloc.Success);
  EXPECT_EQ(Alloc.FileSize, 0);
}

TEST(RotatingAllocator, LongLifetimeNeedsMultipleRegisters) {
  // A single value with lifetime > II needs ceil(LT/II) rotating
  // registers even though only one value exists.
  LoopBody Body;
  {
    IRBuilder B(Body);
    const int X = B.declareValue(RegClass::RR, "x");
    B.defineValue(X, Opcode::FloatAdd, {Use{X, 1}, Use{X, 4}});
    B.setSeeds(X, {1, 2, 3, 4});
    B.finish();
  }
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  const AllocationResult Alloc =
      allocateRotating(Body, Sched.Times, Sched.II, RegClass::RR);
  ASSERT_TRUE(Alloc.Success);
  // Lifetime = 4*II (the omega-4 self use): four instances live at once.
  EXPECT_GE(Alloc.FileSize, 4);
  EXPECT_EQ(validateAllocation(Body, Sched.Times, Sched.II, RegClass::RR,
                               Alloc),
            "");
}

class RandomAllocProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomAllocProperty, ConflictFreeAndNearBound) {
  RandomLoopConfig Config;
  Config.TargetOps = 24;
  const LoopBody Body =
      generateRandomLoop(static_cast<uint64_t>(GetParam()) + 900, Config);
  const Schedule Sched = scheduleLoop(Body, machine());
  if (!Sched.Success)
    return;
  const AllocationResult Alloc =
      allocateRotating(Body, Sched.Times, Sched.II, RegClass::RR);
  ASSERT_TRUE(Alloc.Success) << Body.Source;
  ASSERT_EQ(validateAllocation(Body, Sched.Times, Sched.II, RegClass::RR,
                               Alloc),
            "")
      << Body.Source;
  EXPECT_GE(Alloc.FileSize, Alloc.MaxLive) << Body.Source;
  EXPECT_LE(Alloc.FileSize, Alloc.MaxLive + 5) << Body.Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAllocProperty,
                         ::testing::Range(1, 41));
