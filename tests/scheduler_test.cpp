//===----------------------------------------------------------------------===//
/// \file Unit tests for the bidirectional slack scheduler, the Cydrome-style
/// baseline, and the schedule validator.
//===----------------------------------------------------------------------===//

#include "bounds/Lifetimes.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "graph/MinDist.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

std::vector<LoopBody> allKernels() {
  std::vector<LoopBody> Kernels;
  Kernels.push_back(buildSampleLoop());
  Kernels.push_back(buildDaxpyLoop());
  Kernels.push_back(buildDotLoop());
  Kernels.push_back(buildLinearRecurrenceLoop());
  Kernels.push_back(buildPredicatedAbsLoop());
  Kernels.push_back(buildDivideLoop());
  return Kernels;
}

} // namespace

TEST(SlackScheduler, SampleLoopAchievesMII) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Sched = scheduleLoop(Graph);
  ASSERT_TRUE(Sched.Success);
  EXPECT_EQ(Sched.MII, 2);
  EXPECT_EQ(Sched.II, 2) << "paper's sample loop schedules at II = MII = 2";
  EXPECT_EQ(validateSchedule(Graph, Sched), "");
}

TEST(SlackScheduler, AllKernelsScheduleAtMII) {
  for (const LoopBody &Body : allKernels()) {
    const DepGraph Graph(Body, machine());
    const Schedule Sched = scheduleLoop(Graph);
    ASSERT_TRUE(Sched.Success) << Body.Name;
    EXPECT_EQ(Sched.II, Sched.MII) << Body.Name;
    EXPECT_EQ(validateSchedule(Graph, Sched), "") << Body.Name;
  }
}

TEST(SlackScheduler, DivideLoopBoundByDivider) {
  const LoopBody Body = buildDivideLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Sched = scheduleLoop(Graph);
  ASSERT_TRUE(Sched.Success);
  EXPECT_EQ(Sched.ResMII, 17);
  EXPECT_EQ(Sched.II, 17);
}

TEST(SlackScheduler, Deterministic) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  const Schedule A = scheduleLoop(Graph);
  const Schedule B = scheduleLoop(Graph);
  ASSERT_TRUE(A.Success);
  ASSERT_TRUE(B.Success);
  EXPECT_EQ(A.II, B.II);
  EXPECT_EQ(A.Times, B.Times);
}

TEST(SlackScheduler, StartAtZeroAndStopIsLength) {
  for (const LoopBody &Body : allKernels()) {
    const DepGraph Graph(Body, machine());
    const Schedule Sched = scheduleLoop(Graph);
    ASSERT_TRUE(Sched.Success) << Body.Name;
    EXPECT_EQ(Sched.Times[static_cast<size_t>(Body.startOp())], 0);
    for (const Operation &Op : Body.Ops)
      EXPECT_LE(Sched.Times[static_cast<size_t>(Op.Id)] +
                    machine().latency(Op.Opc),
                Sched.length())
          << Body.Name << "/" << Op.Name;
  }
}

TEST(SlackScheduler, StatsArepopulated) {
  const LoopBody Body = buildSampleLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  // One central-loop iteration per placed op (no backtracking expected on
  // this small kernel, but allow it).
  EXPECT_GE(Sched.Stats.CentralLoopIterations, Body.numOps() - 1);
  EXPECT_GE(Sched.Stats.Placements, Body.numOps() - 1);
  EXPECT_GE(Sched.Stats.SecondsTotal, 0.0);
}

TEST(SlackScheduler, PressureRespectsTrueLowerBound) {
  for (const LoopBody &Body : allKernels()) {
    const DepGraph Graph(Body, machine());
    const Schedule Sched = scheduleLoop(Graph);
    ASSERT_TRUE(Sched.Success) << Body.Name;

    MinDistMatrix M;
    ASSERT_TRUE(M.compute(Graph, Sched.II));
    const PressureInfo Info =
        computePressure(Body, Sched.Times, Sched.II, RegClass::RR);

    // MaxLive >= AvgLive >= sum(MinLT)/II.
    long MinLTSum = 0;
    for (const Value &V : Body.Values)
      if (V.Class == RegClass::RR)
        MinLTSum += computeMinLT(Graph, M, V.Id);
    EXPECT_GE(Info.MaxLive,
              (MinLTSum + Sched.II - 1) / Sched.II -
                  static_cast<long>(Body.numValues()))
        << Body.Name; // slack form; the strict check follows
    EXPECT_GE(static_cast<double>(Info.MaxLive) + 1e-9,
              static_cast<double>(MinLTSum) / Sched.II)
        << Body.Name;
  }
}

TEST(CydromeScheduler, SchedulesAllKernels) {
  for (const LoopBody &Body : allKernels()) {
    const DepGraph Graph(Body, machine());
    const Schedule Sched = scheduleLoop(Graph, SchedulerOptions::cydrome());
    ASSERT_TRUE(Sched.Success) << Body.Name;
    EXPECT_EQ(validateSchedule(Graph, Sched), "") << Body.Name;
  }
}

TEST(CydromeScheduler, SlackNeverWorsePressureOnKernelAggregate) {
  // The paper's headline: bidirectional slack scheduling reduces register
  // pressure relative to Cydrome's unidirectional scheduler. Check the
  // aggregate over the kernel set (individual loops may tie).
  long SlackTotal = 0, CydromeTotal = 0;
  for (const LoopBody &Body : allKernels()) {
    const DepGraph Graph(Body, machine());
    const Schedule A = scheduleLoop(Graph, SchedulerOptions::slack());
    const Schedule B = scheduleLoop(Graph, SchedulerOptions::cydrome());
    ASSERT_TRUE(A.Success && B.Success) << Body.Name;
    SlackTotal +=
        computePressure(Body, A.Times, A.II, RegClass::RR).MaxLive;
    CydromeTotal +=
        computePressure(Body, B.Times, B.II, RegClass::RR).MaxLive;
  }
  EXPECT_LE(SlackTotal, CydromeTotal);
}

TEST(Validator, CatchesDependenceViolation) {
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  Schedule Sched = scheduleLoop(Graph);
  ASSERT_TRUE(Sched.Success);
  // Move the multiply before its load finishes.
  for (const Operation &Op : Body.Ops)
    if (Op.Opc == Opcode::FloatMul)
      Sched.Times[static_cast<size_t>(Op.Id)] = 0;
  EXPECT_NE(validateSchedule(Graph, Sched), "");
}

TEST(Validator, CatchesResourceConflict) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  Schedule Sched = scheduleLoop(Graph);
  ASSERT_TRUE(Sched.Success);
  // Put both fadds in the same cycle: one adder -> conflict.
  std::vector<int> FaddOps;
  for (const Operation &Op : Body.Ops)
    if (Op.Opc == Opcode::FloatAdd)
      FaddOps.push_back(Op.Id);
  ASSERT_EQ(FaddOps.size(), 2u);
  Sched.Times[static_cast<size_t>(FaddOps[1])] =
      Sched.Times[static_cast<size_t>(FaddOps[0])];
  const std::string Err = validateSchedule(Graph, Sched);
  EXPECT_NE(Err, "");
}

TEST(Validator, CatchesFailedSchedule) {
  Schedule Sched;
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  EXPECT_NE(validateSchedule(Graph, Sched), "");
}

TEST(UnidirectionalAblation, SchedulesAllKernels) {
  for (const LoopBody &Body : allKernels()) {
    const DepGraph Graph(Body, machine());
    const Schedule Sched =
        scheduleLoop(Graph, SchedulerOptions::unidirectionalSlack());
    ASSERT_TRUE(Sched.Success) << Body.Name;
    EXPECT_EQ(validateSchedule(Graph, Sched), "") << Body.Name;
  }
}

TEST(SlackScheduler, BidirectionalPlacesLoadsLate) {
  // The paper's motivating observation: unidirectional scheduling places
  // loads too early, stretching their lifetimes. On daxpy the load feeding
  // the multiply should sit later (closer to its use) under the
  // bidirectional heuristic than under the unidirectional one.
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Bi = scheduleLoop(Graph, SchedulerOptions::slack());
  const Schedule Uni =
      scheduleLoop(Graph, SchedulerOptions::unidirectionalSlack());
  ASSERT_TRUE(Bi.Success && Uni.Success);

  const PressureInfo PBi =
      computePressure(Body, Bi.Times, Bi.II, RegClass::RR);
  const PressureInfo PUni =
      computePressure(Body, Uni.Times, Uni.II, RegClass::RR);
  EXPECT_LE(PBi.MaxLive, PUni.MaxLive);
}
