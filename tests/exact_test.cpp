//===----------------------------------------------------------------------===//
/// \file Unit tests for the exact branch-and-bound modulo scheduler and the
/// slack-vs-exact differential-testing oracle.
//===----------------------------------------------------------------------===//

#include "bounds/Lifetimes.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "exact/ExactScheduler.h"
#include "exact/Oracle.h"
#include "workloads/Kernels.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

std::vector<LoopBody> allKernels() {
  std::vector<LoopBody> Kernels;
  Kernels.push_back(buildSampleLoop());
  Kernels.push_back(buildDaxpyLoop());
  Kernels.push_back(buildDotLoop());
  Kernels.push_back(buildLinearRecurrenceLoop());
  Kernels.push_back(buildPredicatedAbsLoop());
  Kernels.push_back(buildDivideLoop());
  return Kernels;
}

} // namespace

TEST(ExactScheduler, SampleLoopProvenAtMII) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  const ExactResult Ex = scheduleLoopExact(Graph);
  EXPECT_EQ(Ex.Status, ExactStatus::Optimal);
  ASSERT_TRUE(Ex.Sched.Success);
  EXPECT_EQ(Ex.Sched.II, 2) << "paper's sample loop is schedulable at MII=2";
  EXPECT_EQ(Ex.Sched.II, Ex.Sched.MII);
  EXPECT_EQ(validateSchedule(Graph, Ex.Sched), "");
}

TEST(ExactScheduler, KernelsProvenOptimalAndNeverWorseThanHeuristic) {
  for (const LoopBody &Body : allKernels()) {
    const DepGraph Graph(Body, machine());
    const ExactResult Ex = scheduleLoopExact(Graph);
    EXPECT_EQ(Ex.Status, ExactStatus::Optimal) << Body.Name;
    ASSERT_TRUE(Ex.Sched.Success) << Body.Name;
    EXPECT_EQ(validateSchedule(Graph, Ex.Sched), "") << Body.Name;

    const Schedule Heur = scheduleLoop(Graph);
    ASSERT_TRUE(Heur.Success) << Body.Name;
    EXPECT_LE(Ex.Sched.II, Heur.II) << Body.Name;
    EXPECT_GE(Ex.Sched.II, Ex.Sched.MII) << Body.Name;
  }
}

TEST(ExactScheduler, SolveAtIIProducesValidatableSchedule) {
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Heur = scheduleLoop(Graph);
  ASSERT_TRUE(Heur.Success);

  Schedule Sched;
  long Nodes = 0;
  const ExactStatus St =
      solveAtII(Graph, Heur.II, ExactOptions(), Sched.Times, Nodes);
  ASSERT_EQ(St, ExactStatus::Optimal);
  Sched.Success = true;
  Sched.II = Heur.II;
  EXPECT_EQ(validateSchedule(Graph, Sched), "");
  EXPECT_GT(Nodes, 0);
}

TEST(ExactScheduler, InfeasibleBelowRecMII) {
  const LoopBody Body = buildLinearRecurrenceLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Heur = scheduleLoop(Graph);
  ASSERT_GT(Heur.RecMII, 1);
  std::vector<int> Times;
  long Nodes = 0;
  EXPECT_EQ(solveAtII(Graph, Heur.RecMII - 1, ExactOptions(), Times, Nodes),
            ExactStatus::Infeasible);
}

TEST(ExactScheduler, ProvesResourceInfeasibilityBelowResMII) {
  // Daxpy has three memory operations on two ports (ResMII = 2) and only
  // trivial recurrences, so II = 1 is resource-infeasible: the search must
  // prove it by exhaustion, not via a MinDist positive cycle.
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Heur = scheduleLoop(Graph);
  ASSERT_EQ(Heur.RecMII, 1);
  ASSERT_GT(Heur.ResMII, 1);
  std::vector<int> Times;
  long Nodes = 0;
  EXPECT_EQ(solveAtII(Graph, 1, ExactOptions(), Times, Nodes),
            ExactStatus::Infeasible);
  EXPECT_GT(Nodes, 0);
}

TEST(ExactScheduler, ZeroNodeBudgetReportsTimeout) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  ExactOptions Options;
  Options.NodeBudget = 0;
  const ExactResult Ex = scheduleLoopExact(Graph, Options);
  EXPECT_EQ(Ex.Status, ExactStatus::Timeout);
  EXPECT_FALSE(Ex.Sched.Success);
}

TEST(ExactScheduler, MaxLivePassStaysLegalAndRespectsBounds) {
  for (const LoopBody &Body : allKernels()) {
    const DepGraph Graph(Body, machine());
    ExactOptions Plain;
    const ExactResult A = scheduleLoopExact(Graph, Plain);
    ExactOptions Minimizing;
    Minimizing.MinimizeMaxLive = true;
    Minimizing.MaxLiveNodeBudget = 1L << 14;
    const ExactResult B = scheduleLoopExact(Graph, Minimizing);
    ASSERT_TRUE(A.Sched.Success && B.Sched.Success) << Body.Name;
    EXPECT_EQ(A.Sched.II, B.Sched.II) << Body.Name;
    EXPECT_EQ(validateSchedule(Graph, B.Sched), "") << Body.Name;
    EXPECT_LE(B.MaxLive, A.MaxLive) << Body.Name;
    EXPECT_GE(B.MaxLive, B.MinAvgAtII)
        << Body.Name << ": MinAvg must lower-bound MaxLive";
  }
}

TEST(ExactScheduler, Deterministic) {
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  const ExactResult A = scheduleLoopExact(Graph);
  const ExactResult B = scheduleLoopExact(Graph);
  ASSERT_TRUE(A.Sched.Success && B.Sched.Success);
  EXPECT_EQ(A.Sched.II, B.Sched.II);
  EXPECT_EQ(A.Sched.Times, B.Sched.Times);
  EXPECT_EQ(A.NodesExplored, B.NodesExplored);
}

// The acceptance sweep: 50 seeded random loops of at most 20 machine
// operations. The exact scheduler must prove the minimal II on every one,
// and both schedulers' outputs must pass independent validation.
TEST(Oracle, FiftyRandomLoopsProvenMinimal) {
  OracleOptions Options;
  Options.Exact.MaxLiveNodeBudget = 1L << 14; // keep the test tier fast
  const OracleReport Report = runOracle(Options);
  ASSERT_EQ(static_cast<int>(Report.Cases.size()), Options.NumLoops);
  EXPECT_EQ(Report.ExactScheduled, Options.NumLoops);
  EXPECT_EQ(Report.ProvenOptimalII, Options.NumLoops)
      << "every loop's minimal II must be proven, not just found";
  EXPECT_EQ(Report.ValidationFailures, 0);
  for (const OracleCase &Case : Report.Cases) {
    EXPECT_LE(Case.Ops, Options.MaxOps) << Case.Name;
    EXPECT_GE(Case.ExactII, Case.MII) << Case.Name;
    if (Case.HeurSuccess) {
      EXPECT_TRUE(Case.IIGapValid) << Case.Name;
      EXPECT_GE(Case.IIGap, 0)
          << Case.Name << ": heuristic cannot beat a proven optimum";
    }
    if (Case.ExactMaxLive >= 0) {
      EXPECT_GE(Case.ExactMaxLive, Case.MinAvg) << Case.Name;
    }
  }
}

// Pins the gap-aggregation rule: the MaxLive gap is only meaningful when
// both schedulers landed on the SAME II — pressure counts lifetimes
// folded over II columns, so values at different IIs measure different
// quantities and must never enter the same histogram.
TEST(Oracle, MaxLiveGapInvalidAtDifferentIIs) {
  OracleCase Case;
  Case.HeurSuccess = true;
  Case.HeurII = 4;
  Case.HeurMaxLive = 10;
  Case.Status = ExactStatus::Optimal;
  Case.ExactII = 3; // exact beat the heuristic by one II
  Case.ExactMaxLive = 12;
  finalizeOracleGaps(Case);
  EXPECT_TRUE(Case.IIGapValid);
  EXPECT_EQ(Case.IIGap, 1);
  EXPECT_FALSE(Case.MaxLiveGapValid)
      << "pressure at II=4 vs II=3 is incomparable";
  EXPECT_EQ(Case.MaxLiveGap, 0) << "invalid gap must not carry a value";

  // Same II: the gap becomes valid and carries the difference.
  Case.ExactII = 4;
  finalizeOracleGaps(Case);
  EXPECT_TRUE(Case.IIGapValid);
  EXPECT_EQ(Case.IIGap, 0);
  EXPECT_TRUE(Case.MaxLiveGapValid);
  EXPECT_EQ(Case.MaxLiveGap, -2);

  // Same II but one side never computed a pressure: invalid again.
  Case.ExactMaxLive = -1;
  finalizeOracleGaps(Case);
  EXPECT_FALSE(Case.MaxLiveGapValid);
  EXPECT_EQ(Case.MaxLiveGap, 0);

  // One scheduler failed outright: neither gap is valid.
  Case.ExactMaxLive = 12;
  Case.Status = ExactStatus::Timeout;
  finalizeOracleGaps(Case);
  EXPECT_FALSE(Case.IIGapValid);
  EXPECT_FALSE(Case.MaxLiveGapValid);
}

TEST(Oracle, CertifiedCountsAggregateByKind) {
  OracleOptions Options;
  Options.NumLoops = 12;
  Options.MaxOps = 14;
  const OracleReport Report = runOracle(Options);
  int MinAvgCount = 0, FamilyCount = 0;
  for (const OracleCase &Case : Report.Cases) {
    EXPECT_EQ(Case.MaxLiveProven,
              Case.Certificate != MaxLiveCertificate::None)
        << Case.Name;
    if (Case.Certificate == MaxLiveCertificate::MinAvgMet) {
      ++MinAvgCount;
      EXPECT_EQ(Case.ExactMaxLive, Case.MinAvg) << Case.Name;
    } else if (Case.Certificate != MaxLiveCertificate::None) {
      ++FamilyCount;
    }
  }
  EXPECT_EQ(Report.CertMinAvg, MinAvgCount);
  EXPECT_EQ(Report.CertFamily, FamilyCount);
  EXPECT_EQ(Report.MaxLiveCertified, MinAvgCount + FamilyCount);
  EXPECT_GT(Report.MaxLiveCertified, 0)
      << "the sweep must certify at least one loop";
}

TEST(Oracle, DeterministicAcrossRuns) {
  OracleOptions Options;
  Options.NumLoops = 6;
  Options.Exact.MaxLiveNodeBudget = 1L << 12;
  const OracleReport A = runOracle(Options);
  const OracleReport B = runOracle(Options);
  ASSERT_EQ(A.Cases.size(), B.Cases.size());
  for (size_t I = 0; I < A.Cases.size(); ++I) {
    EXPECT_EQ(A.Cases[I].Name, B.Cases[I].Name);
    EXPECT_EQ(A.Cases[I].ExactII, B.Cases[I].ExactII);
    EXPECT_EQ(A.Cases[I].ExactMaxLive, B.Cases[I].ExactMaxLive);
    EXPECT_EQ(A.Cases[I].Nodes, B.Cases[I].Nodes);
    EXPECT_EQ(A.Cases[I].HeurII, B.Cases[I].HeurII);
  }
}

TEST(Oracle, SuiteRespectsSizeBounds) {
  const std::vector<LoopBody> Suite = buildOracleSuite(12, 3, 20, 42);
  ASSERT_EQ(Suite.size(), 12u);
  for (const LoopBody &Body : Suite) {
    EXPECT_GE(Body.numMachineOps(), 3);
    EXPECT_LE(Body.numMachineOps(), 20);
    EXPECT_EQ(Body.verify(), "");
  }
}

TEST(ExactScheduler, HeuristicStatsExposedForHarness) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Heur = scheduleLoop(Graph);
  ASSERT_TRUE(Heur.Success);
  EXPECT_GE(Heur.Stats.AttemptsTried, 1);
  EXPECT_GE(Heur.Stats.EjectionsLastAttempt, 0);
  EXPECT_LE(Heur.Stats.EjectionsLastAttempt, Heur.Stats.Ejections);
}
