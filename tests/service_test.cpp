//===----------------------------------------------------------------------===//
/// \file Tests for the scheduling service (service/SchedulingService.h):
/// request parsing, cache behavior (hits, LRU eviction, hit-vs-miss
/// response identity), deadline degradation, per-request II caps, and
/// byte-identical JSONL streams across worker counts.
//===----------------------------------------------------------------------===//

#include "service/SchedulingService.h"

#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "frontend/LoopCompiler.h"
#include "ir/DepGraph.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <thread>

using namespace lsms;

namespace {

ServiceRequest kernelRequest(const std::string &Kernel,
                             ServiceEngine Engine = ServiceEngine::Slack) {
  ServiceRequest Req;
  Req.Kernel = Kernel;
  Req.Engine = Engine;
  return Req;
}

TEST(ServiceParseTest, AcceptsFullRequest) {
  ServiceRequest Req;
  std::string Err;
  ASSERT_TRUE(SchedulingService::parseRequestLine(
      "{\"id\": \"r1\", \"name\": \"n\", \"kernel\": \"daxpy\", "
      "\"engine\": \"bnb\", \"deadline_ms\": 250, \"max_ii\": 7, "
      "\"emit_times\": true}",
      Req, Err))
      << Err;
  EXPECT_EQ(Req.Id, "r1");
  EXPECT_EQ(Req.Name, "n");
  EXPECT_EQ(Req.Kernel, "daxpy");
  EXPECT_EQ(Req.Engine, ServiceEngine::BranchAndBound);
  EXPECT_EQ(Req.DeadlineMs, 250);
  EXPECT_EQ(Req.MaxII, 7);
  EXPECT_TRUE(Req.EmitTimes);
}

TEST(ServiceParseTest, RejectsMalformedRequests) {
  ServiceRequest Req;
  std::string Err;
  // Not JSON at all.
  EXPECT_FALSE(SchedulingService::parseRequestLine("nope", Req, Err));
  // Neither kernel nor source.
  EXPECT_FALSE(
      SchedulingService::parseRequestLine("{\"id\": \"x\"}", Req, Err));
  // Both kernel and source.
  EXPECT_FALSE(SchedulingService::parseRequestLine(
      "{\"kernel\": \"daxpy\", \"source\": \"loop\"}", Req, Err));
  // Unknown field.
  EXPECT_FALSE(SchedulingService::parseRequestLine(
      "{\"kernel\": \"daxpy\", \"bogus\": 1}", Req, Err));
  // Unknown engine.
  EXPECT_FALSE(SchedulingService::parseRequestLine(
      "{\"kernel\": \"daxpy\", \"engine\": \"magic\"}", Req, Err));
  // Negative II cap.
  EXPECT_FALSE(SchedulingService::parseRequestLine(
      "{\"kernel\": \"daxpy\", \"max_ii\": -1}", Req, Err));
}

TEST(ServiceParseTest, DefaultEngineApplies) {
  ServiceRequest Req;
  std::string Err;
  ASSERT_TRUE(SchedulingService::parseRequestLine(
      "{\"kernel\": \"daxpy\"}", Req, Err, ServiceEngine::Sat));
  EXPECT_EQ(Req.Engine, ServiceEngine::Sat);
  ASSERT_TRUE(SchedulingService::parseRequestLine(
      "{\"kernel\": \"daxpy\", \"engine\": \"slack\"}", Req, Err,
      ServiceEngine::Sat));
  EXPECT_EQ(Req.Engine, ServiceEngine::Slack);
}

TEST(ServiceTest, AnswersMatchDirectScheduling) {
  SchedulingService Service;
  for (const NamedKernel &K : kernelSources()) {
    const ServiceResponse Resp = Service.handle(kernelRequest(K.Name));
    ASSERT_TRUE(Resp.Ok) << K.Name << ": " << Resp.Error;
    LoopBody Body;
    ASSERT_EQ(compileLoop(K.Source, K.Name, Body), "");
    const MachineModel Machine = MachineModel::cydra5();
    const DepGraph Graph(Body, Machine);
    const Schedule Direct = scheduleLoop(Graph, SchedulerOptions());
    ASSERT_TRUE(Direct.Success);
    EXPECT_EQ(Resp.II, Direct.II) << K.Name;
    EXPECT_EQ(Resp.MII, Direct.MII) << K.Name;
  }
}

TEST(ServiceTest, EmittedTimesValidate) {
  SchedulingService Service;
  for (const char *Kernel : {"daxpy", "ll1_hydro", "ll5_tridiag"}) {
    ServiceRequest Req = kernelRequest(Kernel);
    Req.EmitTimes = true;
    const ServiceResponse Resp = Service.handle(Req);
    ASSERT_TRUE(Resp.Ok) << Resp.Error;
    LoopBody Body;
    for (const NamedKernel &K : kernelSources())
      if (Req.Kernel == K.Name) {
        ASSERT_EQ(compileLoop(K.Source, K.Name, Body), "");
      }
    ASSERT_EQ(Resp.Times.size(), static_cast<size_t>(Body.numOps()));
    Schedule Check;
    Check.Success = true;
    Check.II = Resp.II;
    Check.MII = Resp.MII;
    Check.Times = Resp.Times;
    const MachineModel Machine = MachineModel::cydra5();
    const DepGraph Graph(Body, Machine);
    EXPECT_EQ(validateSchedule(Graph, Check), "") << Kernel;
  }
}

TEST(ServiceTest, RepeatedRequestsHitTheCacheAndMatch) {
  SchedulingService Service;
  ServiceRequest Req = kernelRequest("daxpy", ServiceEngine::BranchAndBound);
  Req.EmitTimes = true;
  const ServiceResponse First = Service.handle(Req);
  ASSERT_TRUE(First.Ok) << First.Error;
  const ServiceResponse Second = Service.handle(Req);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  // Hit and miss must render the same bytes.
  EXPECT_EQ(First.toJsonl(), Second.toJsonl());
  EXPECT_GE(Service.frontCacheStats().Hits, 1);

  // A fresh service (all misses) agrees too.
  SchedulingService Fresh;
  EXPECT_EQ(Fresh.handle(Req).toJsonl(), First.toJsonl());
}

TEST(ServiceTest, LruEvictionKeepsAnswering) {
  ServiceConfig Config;
  Config.CacheCapacity = 2;
  Config.CacheShards = 1;
  Config.FrontCacheCapacity = 2;
  SchedulingService Service(Config);
  const char *Kernels[] = {"daxpy", "ll1_hydro", "ll5_tridiag",
                           "ll3_inner_product"};
  for (int Round = 0; Round < 3; ++Round)
    for (const char *Kernel : Kernels)
      ASSERT_TRUE(Service.handle(kernelRequest(Kernel)).Ok) << Kernel;
  const CacheStats Front = Service.frontCacheStats();
  EXPECT_GE(Front.Evictions, 1);
  EXPECT_LE(Front.Entries, 2u);
  // Evicted entries are recomputed, not corrupted: answers still match a
  // fresh service.
  SchedulingService Fresh;
  for (const char *Kernel : Kernels)
    EXPECT_EQ(Service.handle(kernelRequest(Kernel)).toJsonl(),
              Fresh.handle(kernelRequest(Kernel)).toJsonl())
        << Kernel;
}

TEST(ServiceTest, ZeroDeadlineDegradesToValidSlackSchedule) {
  SchedulingService Service;
  for (const ServiceEngine Engine :
       {ServiceEngine::BranchAndBound, ServiceEngine::Sat}) {
    ServiceRequest Req = kernelRequest("ll1_hydro", Engine);
    Req.DeadlineMs = 0; // expired before any exact work can start
    Req.EmitTimes = true;
    const ServiceResponse Resp = Service.handle(Req);
    ASSERT_TRUE(Resp.Ok) << Resp.Error;
    EXPECT_TRUE(Resp.Degraded);
    EXPECT_EQ(Resp.ExactVerdict, ExactStatus::Timeout);

    // The degraded response IS the slack answer, and it validates.
    ServiceRequest SlackReq = Req;
    SlackReq.Engine = ServiceEngine::Slack;
    SlackReq.DeadlineMs = -1;
    const ServiceResponse Slack = Service.handle(SlackReq);
    ASSERT_TRUE(Slack.Ok);
    EXPECT_FALSE(Slack.Degraded);
    EXPECT_EQ(Resp.II, Slack.II);
    EXPECT_EQ(Resp.Times, Slack.Times);

    LoopBody Body;
    for (const NamedKernel &K : kernelSources())
      if (Req.Kernel == K.Name) {
        ASSERT_EQ(compileLoop(K.Source, K.Name, Body), "");
      }
    Schedule Check;
    Check.Success = true;
    Check.II = Resp.II;
    Check.MII = Resp.MII;
    Check.Times = Resp.Times;
    const MachineModel Machine = MachineModel::cydra5();
    const DepGraph Graph(Body, Machine);
    EXPECT_EQ(validateSchedule(Graph, Check), "");
  }
  EXPECT_GE(Service.metrics().counter("requests_degraded"), 2);
}

TEST(ServiceTest, ImpossibleMaxIiIsAnError) {
  SchedulingService Service;
  ServiceRequest Req = kernelRequest("ll5_tridiag");
  Req.MaxII = 1; // tridiag has RecMII > 1: no schedule can exist
  const ServiceResponse Resp = Service.handle(Req);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_FALSE(Resp.Error.empty());
}

TEST(ServiceTest, UnknownKernelIsAnError) {
  SchedulingService Service;
  const ServiceResponse Resp = Service.handle(kernelRequest("no_such"));
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Name, "no_such");
  EXPECT_NE(Resp.Error.find("unknown kernel"), std::string::npos);
}

std::string runJsonl(SchedulingService &Service, const std::string &Input) {
  std::istringstream In(Input);
  std::ostringstream Out;
  Service.processJsonl(In, Out);
  return Out.str();
}

TEST(ServiceTest, JsonlStreamIsByteIdenticalAcrossJobs) {
  std::ostringstream Input;
  Input << "# comment lines and blanks are skipped\n\n";
  int Id = 0;
  for (int Pass = 0; Pass < 2; ++Pass)
    for (const NamedKernel &K : kernelSources())
      Input << "{\"id\": \"r" << Id++ << "\", \"kernel\": \"" << K.Name
            << "\", \"engine\": \"" << (Pass ? "bnb" : "slack")
            << "\", \"emit_times\": true}\n";
  Input << "{\"broken\n";

  std::vector<std::string> Streams;
  for (const int Jobs : {1, 2, 4}) {
    ServiceConfig Config;
    Config.Jobs = Jobs;
    SchedulingService Service(Config);
    Streams.push_back(runJsonl(Service, Input.str()));
  }
  EXPECT_EQ(Streams[0], Streams[1]);
  EXPECT_EQ(Streams[0], Streams[2]);
  // Responses come back in request order whatever the scheduling order.
  std::istringstream Check(Streams[0]);
  std::string Line;
  int Index = 0;
  while (std::getline(Check, Line)) {
    const std::string Expect = "{\"index\":" + std::to_string(Index++) + ",";
    EXPECT_EQ(Line.substr(0, Expect.size()), Expect);
  }
  EXPECT_EQ(Index, 2 * static_cast<int>(kernelSources().size()) + 1);
}

TEST(ServiceTest, ParseErrorsBecomeErrorResponses) {
  SchedulingService Service;
  const std::string Out =
      runJsonl(Service, "{\"kernel\": \"daxpy\"}\nnot json\n");
  std::istringstream Lines(Out);
  std::string First, Second;
  ASSERT_TRUE(std::getline(Lines, First));
  ASSERT_TRUE(std::getline(Lines, Second));
  EXPECT_NE(First.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(Second.find("\"status\":\"error\""), std::string::npos);
  EXPECT_EQ(Service.metrics().counter("requests_parse_errors"), 1);
}

TEST(ServiceTest, MetricsJsonMentionsBothCaches) {
  SchedulingService Service;
  ASSERT_TRUE(Service.handle(kernelRequest("daxpy")).Ok);
  const std::string Json = Service.metricsJson();
  EXPECT_NE(Json.find("\"cache\""), std::string::npos);
  EXPECT_NE(Json.find("\"front_cache\""), std::string::npos);
  EXPECT_NE(Json.find("\"store\""), std::string::npos);
  EXPECT_NE(Json.find("requests_total"), std::string::npos);
}

TEST(ServiceTest, HandleLineMatchesProcessJsonl) {
  const std::string Lines[] = {
      "{\"kernel\": \"daxpy\"}",
      "{\"kernel\": \"ll5_tridiag\", \"engine\": \"bnb\"}",
      "garbage that does not parse",
  };
  SchedulingService Pipe;
  std::ostringstream In;
  for (const std::string &L : Lines)
    In << L << "\n";
  std::istringstream IS(In.str());
  std::ostringstream Expected;
  Pipe.processJsonl(IS, Expected);

  SchedulingService Direct;
  std::ostringstream Got;
  for (int I = 0; I != 3; ++I)
    Got << Direct.handleLine(Lines[I], I, ServiceEngine::Slack).toJsonl()
        << "\n";
  EXPECT_EQ(Got.str(), Expected.str());
}

// Regression for the shutdown ordering bug: destroying (or draining) the
// service while a processJsonl batch is still in flight on another thread
// must block until every admitted request has answered — no deadlock, no
// dropped or error responses. (Do not assert on in-flight counts at the
// moment drain() returns; between batch items the count legitimately
// touches zero.)
TEST(ServiceTest, DrainWaitsForInFlightBatch) {
  std::ostringstream In;
  for (int I = 0; I < 24; ++I)
    In << "{\"source\": \"loop i = 2, n\\n  x[i] = x[i-1] + u[i] * "
       << (I + 1) << ".0\\nend\"}\n";
  std::string Out;
  {
    ServiceConfig SC;
    SC.Jobs = 4;
    SchedulingService Service(SC);
    std::istringstream IS(In.str());
    std::ostringstream OS;
    std::thread Batch([&] { Service.processJsonl(IS, OS); });
    Service.drain();
    EXPECT_FALSE(Service.accepting());
    Batch.join();
    Out = OS.str();
  } // destructor after drain(): must not hang or crash
  std::istringstream Lines(Out);
  std::string Line;
  int Count = 0;
  while (std::getline(Lines, Line)) {
    EXPECT_EQ(Line.rfind("{\"index\":" + std::to_string(Count) + ",", 0),
              0u);
    ++Count;
  }
  EXPECT_EQ(Count, 24);
}

TEST(ServiceTest, StoreTierSurvivesServiceRestart) {
  const std::string StorePath =
      testing::TempDir() + "lsms_service_store_tier.log";
  std::remove(StorePath.c_str());
  ServiceConfig SC;
  SC.StorePath = StorePath;

  ServiceRequest Req = kernelRequest("ll1_hydro", ServiceEngine::BranchAndBound);
  ServiceResponse Cold;
  {
    SchedulingService Service(SC);
    ASSERT_TRUE(Service.storeOpen()) << Service.storeError();
    Cold = Service.handle(Req, 0);
    ASSERT_TRUE(Cold.Ok) << Cold.Error;
    EXPECT_EQ(Service.metrics().counter("store_writes"), 1);
  }
  SchedulingService Fresh(SC);
  ASSERT_TRUE(Fresh.storeOpen()) << Fresh.storeError();
  EXPECT_EQ(Fresh.storeStats().RecoveredRecords, 1);
  const ServiceResponse Warm = Fresh.handle(Req, 0);
  EXPECT_EQ(Warm.toJsonl(), Cold.toJsonl());
  EXPECT_EQ(Fresh.metrics().counter("store_hits"), 1);
  std::remove(StorePath.c_str());
}

} // namespace
