//===----------------------------------------------------------------------===//
/// \file Tests for the schedule listing / reservation-table printers and
/// the GraphViz exporter.
//===----------------------------------------------------------------------===//

#include "core/ModuloScheduler.h"
#include "core/SchedulePrinter.h"
#include "ir/GraphViz.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

} // namespace

TEST(SchedulePrinter, ListingShowsEveryOp) {
  const LoopBody Body = buildSampleLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  std::ostringstream OS;
  printScheduleListing(OS, Body, machine(), Sched);
  const std::string Out = OS.str();
  for (const Operation &Op : Body.Ops) {
    if (!isPseudo(Op.Opc)) {
      EXPECT_NE(Out.find(Op.Name), std::string::npos) << Op.Name;
    }
  }
  EXPECT_NE(Out.find("stage"), std::string::npos);
}

TEST(SchedulePrinter, ReservationTableHasIIRows) {
  const LoopBody Body = buildSampleLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  std::ostringstream OS;
  printReservationTable(OS, Body, machine(), Sched);
  const std::string Out = OS.str();
  // One data row per cycle of the kernel plus header/separator.
  EXPECT_NE(Out.find("Adder#0"), std::string::npos);
  EXPECT_NE(Out.find("Memory Port#1"), std::string::npos);
  int Lines = 0;
  for (char C : Out)
    Lines += C == '\n' ? 1 : 0;
  EXPECT_EQ(Lines, 2 + Sched.II);
}

TEST(SchedulePrinter, DividerContinuationMarked) {
  const LoopBody Body = buildDivideLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  std::ostringstream OS;
  printReservationTable(OS, Body, machine(), Sched);
  // The non-pipelined divide occupies 17 rows; continuation cells carry *.
  EXPECT_NE(OS.str().find("*"), std::string::npos);
}

TEST(SchedulePrinter, FailedScheduleHandled) {
  const LoopBody Body = buildSampleLoop();
  Schedule Bad;
  std::ostringstream OS;
  printScheduleListing(OS, Body, machine(), Bad);
  printReservationTable(OS, Body, machine(), Bad);
  EXPECT_NE(OS.str().find("(no schedule)"), std::string::npos);
}

TEST(GraphViz, EmitsNodesAndArcs) {
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  std::ostringstream OS;
  writeGraphViz(OS, Graph);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("digraph"), std::string::npos);
  EXPECT_NE(Out.find("fadd"), std::string::npos);
  // Cross-iteration arcs are highlighted.
  EXPECT_NE(Out.find("color=red"), std::string::npos);
  // Pseudo ops omitted by default.
  EXPECT_EQ(Out.find("start"), std::string::npos);
}

TEST(GraphViz, IncludePseudoShowsScaffolding) {
  const LoopBody Body = buildDaxpyLoop();
  const DepGraph Graph(Body, machine());
  std::ostringstream OS;
  writeGraphViz(OS, Graph, /*IncludePseudo=*/true);
  EXPECT_NE(OS.str().find("style=dotted"), std::string::npos);
}
