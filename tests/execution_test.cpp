//===----------------------------------------------------------------------===//
/// \file Exhaustive coverage of operation semantics (evaluateOpcode) and
/// executor edge cases: zero iterations, division by zero, predicate
/// algebra, and the memory-init contract.
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "vliwsim/Execution.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace lsms;

namespace {

double eval(Opcode Opc, std::vector<double> Operands) {
  return evaluateOpcode(Opc, Operands);
}

} // namespace

TEST(OpcodeSemantics, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval(Opcode::FloatAdd, {2, 3}), 5);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntAdd, {2, 3}), 5);
  EXPECT_DOUBLE_EQ(eval(Opcode::AddrAdd, {100, 4}), 104);
  EXPECT_DOUBLE_EQ(eval(Opcode::FloatSub, {2, 3}), -1);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntSub, {2, 3}), -1);
  EXPECT_DOUBLE_EQ(eval(Opcode::AddrSub, {100, 4}), 96);
  EXPECT_DOUBLE_EQ(eval(Opcode::FloatMul, {2.5, 4}), 10);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntMul, {3, 4}), 12);
  EXPECT_DOUBLE_EQ(eval(Opcode::AddrMul, {8, 4}), 32);
  EXPECT_DOUBLE_EQ(eval(Opcode::FloatDiv, {7, 2}), 3.5);
  EXPECT_DOUBLE_EQ(eval(Opcode::FloatSqrt, {9}), 3);
}

TEST(OpcodeSemantics, IntegerOpsTruncate) {
  EXPECT_DOUBLE_EQ(eval(Opcode::IntDiv, {7, 2}), 3);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntDiv, {-7, 2}), -3);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntMod, {7, 3}), 1);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntAnd, {6, 3}), 2);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntOr, {6, 3}), 7);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntXor, {6, 3}), 5);
}

TEST(OpcodeSemantics, DivModByZeroAreDefined) {
  EXPECT_DOUBLE_EQ(eval(Opcode::IntDiv, {7, 0}), 0);
  EXPECT_DOUBLE_EQ(eval(Opcode::IntMod, {7, 0}), 0);
  EXPECT_TRUE(std::isinf(eval(Opcode::FloatDiv, {1, 0})));
}

TEST(OpcodeSemantics, Comparisons) {
  EXPECT_DOUBLE_EQ(eval(Opcode::CmpEQ, {2, 2}), 1);
  EXPECT_DOUBLE_EQ(eval(Opcode::CmpEQ, {2, 3}), 0);
  EXPECT_DOUBLE_EQ(eval(Opcode::CmpNE, {2, 3}), 1);
  EXPECT_DOUBLE_EQ(eval(Opcode::CmpLT, {2, 3}), 1);
  EXPECT_DOUBLE_EQ(eval(Opcode::CmpLE, {3, 3}), 1);
  EXPECT_DOUBLE_EQ(eval(Opcode::CmpGT, {2, 3}), 0);
  EXPECT_DOUBLE_EQ(eval(Opcode::CmpGE, {3, 3}), 1);
}

TEST(OpcodeSemantics, PredicateAlgebra) {
  EXPECT_DOUBLE_EQ(eval(Opcode::PredAnd, {1, 1}), 1);
  EXPECT_DOUBLE_EQ(eval(Opcode::PredAnd, {1, 0}), 0);
  EXPECT_DOUBLE_EQ(eval(Opcode::PredOr, {0, 1}), 1);
  EXPECT_DOUBLE_EQ(eval(Opcode::PredOr, {0, 0}), 0);
  EXPECT_DOUBLE_EQ(eval(Opcode::PredNot, {0}), 1);
  EXPECT_DOUBLE_EQ(eval(Opcode::PredNot, {2}), 0); // any nonzero is true
}

TEST(OpcodeSemantics, CopyAndSelect) {
  EXPECT_DOUBLE_EQ(eval(Opcode::Copy, {42}), 42);
  EXPECT_DOUBLE_EQ(eval(Opcode::Select, {1, 10, 20}), 10);
  EXPECT_DOUBLE_EQ(eval(Opcode::Select, {0, 10, 20}), 20);
}

TEST(Execution, ZeroIterations) {
  const LoopBody Body = buildDotLoop();
  const ExecutionResult R = runReference(Body, 0);
  EXPECT_EQ(R.Error, "");
  EXPECT_TRUE(R.LiveOuts.empty());
  for (const auto &Cells : R.Arrays)
    EXPECT_TRUE(Cells.empty());
}

TEST(Execution, CustomMemoryInitIsHonored) {
  const LoopBody Body = buildDaxpyLoop();
  const auto Init = [](int Array, long Index) {
    return Array == 0 ? 10.0 + Index : 1.0;
  };
  const ExecutionResult R = runReference(Body, 3, Init);
  ASSERT_EQ(R.Error, "");
  // z(i) = 3*x(i) + y(i) = 3*(10+i) + 1.
  for (long I = 1; I <= 3; ++I)
    EXPECT_DOUBLE_EQ(R.Arrays[2].at(I), 3.0 * (10.0 + I) + 1.0);
}

TEST(Execution, DefaultMemoryInitAwayFromZeroAndDeterministic) {
  for (int Array = 0; Array < 4; ++Array) {
    for (long Index = -8; Index < 64; ++Index) {
      const double V = defaultMemoryInit(Array, Index);
      EXPECT_GE(V, 1.0);
      EXPECT_LT(V, 3.0);
      EXPECT_DOUBLE_EQ(V, defaultMemoryInit(Array, Index));
    }
  }
}

TEST(Execution, SeedsDefaultToZeroBeyondVector) {
  // A value read 3 iterations back with only one seed: depths 2 and 3
  // read as 0.
  LoopBody Body;
  {
    IRBuilder Builder(Body);
    const int S = Builder.declareValue(RegClass::RR, "s");
    Builder.defineValue(S, Opcode::FloatAdd, {Use{S, 3}, Use{S, 1}});
    Builder.setSeeds(S, {5.0});
    Builder.markLiveOut(S);
    Builder.finish();
  }
  const ExecutionResult R = runReference(Body, 1);
  ASSERT_EQ(R.Error, "");
  // s(first) = s(first-3) + s(first-1) = 0 + 5.
  EXPECT_DOUBLE_EQ(R.LiveOuts.begin()->second, 5.0);
}

