//===----------------------------------------------------------------------===//
/// \file Unit tests for the embedded CDCL solver on hand-written CNF —
/// satisfiable and unsatisfiable instances, unit propagation, incremental
/// clause addition, model enumeration via blocking clauses, budget
/// exhaustion, and bit-for-bit determinism — plus basic checks of the SAT
/// modulo-scheduling encoder on the kernel suite.
//===----------------------------------------------------------------------===//

#include "bounds/Bounds.h"
#include "core/FuAssignment.h"
#include "core/Validate.h"
#include "sat/SatScheduler.h"
#include "sat/SatSolver.h"
#include "workloads/Kernels.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

/// Adds the clause {Ls...} to \p S; convenience for literal lists.
bool add(SatSolver &S, std::initializer_list<Lit> Ls) {
  return S.addClause(std::vector<Lit>(Ls));
}

/// Pigeonhole principle PHP(Pigeons, Holes): unsatisfiable whenever
/// Pigeons > Holes, and known to require genuine conflict-driven search —
/// no polynomial resolution proof exists.
void encodePigeonhole(SatSolver &S, int Pigeons, int Holes) {
  std::vector<std::vector<int>> Var(static_cast<size_t>(Pigeons),
                                    std::vector<int>(static_cast<size_t>(Holes)));
  for (int P = 0; P < Pigeons; ++P)
    for (int H = 0; H < Holes; ++H)
      Var[static_cast<size_t>(P)][static_cast<size_t>(H)] = S.newVar();
  for (int P = 0; P < Pigeons; ++P) {
    std::vector<Lit> AtLeastOne;
    for (int H = 0; H < Holes; ++H)
      AtLeastOne.push_back(
          mkLit(Var[static_cast<size_t>(P)][static_cast<size_t>(H)]));
    S.addClause(AtLeastOne);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P = 0; P < Pigeons; ++P)
      for (int Q = P + 1; Q < Pigeons; ++Q)
        add(S, {mkLit(Var[static_cast<size_t>(P)][static_cast<size_t>(H)], true),
                mkLit(Var[static_cast<size_t>(Q)][static_cast<size_t>(H)], true)});
}

} // namespace

TEST(SatSolver, EmptyFormulaIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatSolver, UnitClauseFixesModel) {
  SatSolver S;
  const int X = S.newVar();
  const int Y = S.newVar();
  ASSERT_TRUE(add(S, {mkLit(X)}));
  ASSERT_TRUE(add(S, {mkLit(Y, true)}));
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(X));
  EXPECT_FALSE(S.modelValue(Y));
}

TEST(SatSolver, ContradictoryUnitsAreUnsatAtRoot) {
  SatSolver S;
  const int X = S.newVar();
  ASSERT_TRUE(add(S, {mkLit(X)}));
  EXPECT_FALSE(add(S, {mkLit(X, true)}));
  EXPECT_FALSE(S.okay());
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolver, UnitPropagationChain) {
  // x0 and a chain x_i -> x_{i+1}: pure propagation, zero decisions needed
  // beyond the first solve-loop pass.
  SatSolver S;
  constexpr int N = 32;
  std::vector<int> X;
  for (int I = 0; I < N; ++I)
    X.push_back(S.newVar());
  ASSERT_TRUE(add(S, {mkLit(X[0])}));
  for (int I = 0; I + 1 < N; ++I)
    ASSERT_TRUE(add(S, {mkLit(X[static_cast<size_t>(I)], true),
                        mkLit(X[static_cast<size_t>(I) + 1])}));
  ASSERT_EQ(S.solve(), SatResult::Sat);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(S.modelValue(X[static_cast<size_t>(I)])) << "x" << I;
  EXPECT_EQ(S.stats().Conflicts, 0);
}

TEST(SatSolver, TautologyAndDuplicatesAreNormalized) {
  SatSolver S;
  const int X = S.newVar();
  const int Y = S.newVar();
  ASSERT_TRUE(add(S, {mkLit(X), mkLit(X, true)})); // tautology: dropped
  EXPECT_EQ(S.numClauses(), 0);
  ASSERT_TRUE(add(S, {mkLit(Y), mkLit(Y)})); // collapses to unit y
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(Y));
}

TEST(SatSolver, PigeonholeIsUnsat) {
  SatSolver S;
  encodePigeonhole(S, 5, 4);
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0);
}

TEST(SatSolver, SatisfiablePigeonholeFindsInjection) {
  SatSolver S;
  encodePigeonhole(S, 4, 4);
  ASSERT_EQ(S.solve(), SatResult::Sat);
  // The model must place each pigeon in a distinct hole.
  std::vector<int> HoleOf(4, -1);
  for (int P = 0; P < 4; ++P) {
    int Count = 0;
    for (int H = 0; H < 4; ++H)
      if (S.modelValue(P * 4 + H)) {
        HoleOf[static_cast<size_t>(P)] = H;
        ++Count;
      }
    EXPECT_GE(Count, 1) << "pigeon " << P << " unplaced";
  }
  for (int P = 0; P < 4; ++P)
    for (int Q = P + 1; Q < 4; ++Q)
      EXPECT_NE(HoleOf[static_cast<size_t>(P)], HoleOf[static_cast<size_t>(Q)]);
}

TEST(SatSolver, BudgetExhaustionReturnsUnknown) {
  SatSolver S;
  encodePigeonhole(S, 6, 5);
  EXPECT_EQ(S.solve(/*ConflictBudget=*/1), SatResult::Unknown);
  // The instance stays decidable afterwards.
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolver, BlockingClauseEnumerationCountsModels) {
  // 3 free variables: blocking each model must yield exactly 8 models and
  // then Unsat — exercises incremental clause addition between solves.
  SatSolver S;
  const int A = S.newVar(), B = S.newVar(), C = S.newVar();
  int Models = 0;
  while (S.solve() == SatResult::Sat) {
    ++Models;
    ASSERT_LE(Models, 8);
    std::vector<Lit> Block;
    for (int V : {A, B, C})
      Block.push_back(mkLit(V, S.modelValue(V)));
    if (!S.addClause(Block))
      break;
  }
  EXPECT_EQ(Models, 8);
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolver, DeterministicAcrossIdenticalRuns) {
  auto run = [](SatSolverStats &Stats, std::vector<bool> &Model) {
    SatSolver S;
    encodePigeonhole(S, 5, 5);
    // Skew activities with an extra constraint web so the heap order is
    // exercised: forbid the diagonal.
    for (int P = 0; P < 5; ++P)
      S.addClause({mkLit(P * 5 + P, true)});
    EXPECT_EQ(S.solve(), SatResult::Sat);
    Stats = S.stats();
    for (int V = 0; V < S.numVars(); ++V)
      Model.push_back(S.modelValue(V));
  };
  SatSolverStats S1, S2;
  std::vector<bool> M1, M2;
  run(S1, M1);
  run(S2, M2);
  EXPECT_EQ(M1, M2);
  EXPECT_EQ(S1.Decisions, S2.Decisions);
  EXPECT_EQ(S1.Conflicts, S2.Conflicts);
  EXPECT_EQ(S1.Propagations, S2.Propagations);
  EXPECT_EQ(S1.Restarts, S2.Restarts);
  EXPECT_EQ(S1.Learned, S2.Learned);
}

TEST(SatSolver, LearnedClauseDeletionKeepsSoundness) {
  // Big enough satisfiable instance to trip restarts and reduceDB while
  // still finishing fast; the verdict must stay correct.
  SatSolver S;
  encodePigeonhole(S, 8, 8);
  EXPECT_EQ(S.solve(), SatResult::Sat);
  SatSolver U;
  encodePigeonhole(U, 9, 8);
  EXPECT_EQ(U.solve(), SatResult::Unsat);
}

//===----------------------------------------------------------------------===//
// Encoder basics (the full cross-engine sweep lives in cross_engine_test).
//===----------------------------------------------------------------------===//

namespace {

/// Runs the SAT engine at a fixed II, returning the status and (on
/// Scheduled) asserting the decoded schedule is validator-clean.
SatScheduleStatus satAt(const DepGraph &Graph, int II, long Budget,
                        SatEngineStats &Stats) {
  MinDistMatrix MinDist;
  if (!MinDist.compute(Graph, II))
    return SatScheduleStatus::Infeasible;
  const std::vector<int> FuInstance =
      assignFunctionalUnits(Graph.body(), Graph.machine());
  std::vector<int> Times;
  const SatScheduleStatus St =
      scheduleAtIISat(Graph, MinDist, FuInstance, Budget, Times, Stats);
  if (St == SatScheduleStatus::Scheduled) {
    Schedule Sched;
    Sched.Success = true;
    Sched.II = II;
    Sched.Times = Times;
    EXPECT_EQ(validateSchedule(Graph, Sched), "")
        << Graph.body().Name << " II=" << II;
  }
  return St;
}

} // namespace

TEST(SatScheduler, KernelSuiteSchedulableAtSomeII) {
  const MachineModel Machine = MachineModel::cydra5();
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, Machine);
    const MIIBounds Bounds = computeMII(Graph);
    bool Scheduled = false;
    for (int II = Bounds.MII; II <= Bounds.MII + 8 && !Scheduled; ++II) {
      SatEngineStats Stats;
      const SatScheduleStatus St = satAt(Graph, II, 1L << 18, Stats);
      ASSERT_NE(St, SatScheduleStatus::Budget) << Body.Name << " II=" << II;
      Scheduled = St == SatScheduleStatus::Scheduled;
    }
    EXPECT_TRUE(Scheduled) << Body.Name;
  }
}

TEST(SatScheduler, BelowRecMIIIsInfeasible) {
  const MachineModel Machine = MachineModel::cydra5();
  const LoopBody Body = buildLinearRecurrenceLoop();
  const DepGraph Graph(Body, Machine);
  const MIIBounds Bounds = computeMII(Graph);
  ASSERT_GT(Bounds.RecMII, 1);
  SatEngineStats Stats;
  EXPECT_EQ(satAt(Graph, Bounds.RecMII - 1, 1L << 18, Stats),
            SatScheduleStatus::Infeasible);
}

TEST(SatScheduler, ZeroBudgetGivesUpImmediately) {
  const MachineModel Machine = MachineModel::cydra5();
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, Machine);
  const MIIBounds Bounds = computeMII(Graph);
  SatEngineStats Stats;
  EXPECT_EQ(satAt(Graph, Bounds.MII, /*Budget=*/0, Stats),
            SatScheduleStatus::Budget);
}

TEST(SatScheduler, StatsArePopulated) {
  const MachineModel Machine = MachineModel::cydra5();
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, Machine);
  const MIIBounds Bounds = computeMII(Graph);
  for (int II = Bounds.MII; II <= Bounds.MII + 8; ++II) {
    SatEngineStats Stats;
    if (satAt(Graph, II, 1L << 18, Stats) == SatScheduleStatus::Scheduled) {
      EXPECT_GT(Stats.Variables, 0);
      EXPECT_GT(Stats.Clauses, 0);
      return;
    }
  }
  FAIL() << "sample loop never scheduled";
}
