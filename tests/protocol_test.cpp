//===----------------------------------------------------------------------===//
/// Golden tests pinning the v1 wire protocol (service/Protocol.h) byte for
/// byte: response lines for every status shape (ok/error/shed/control),
/// the enum wire spellings, the shed-id echo, and the substring
/// classifier. A failure here means the wire format changed — that is a
/// protocol version bump, not a refactor.
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"
#include "service/SchedulingService.h"

#include "gtest/gtest.h"

#include <sstream>
#include <string>
#include <vector>

using namespace lsms;

namespace {

/// Runs one request line through a fresh service and returns the rendered
/// response line (no trailing newline).
std::string respond(const std::string &Line, int Index = 0) {
  SchedulingService Svc{[] {
    ServiceConfig SC;
    SC.Jobs = 1;
    return SC;
  }()};
  return Svc.handleLine(Line, Index).toJsonl();
}

} // namespace

TEST(Protocol, GoldenOkLineSlackEngine) {
  EXPECT_EQ(respond("{\"kernel\": \"daxpy\"}", 3),
            "{\"index\":3,\"proto\":1,\"name\":\"daxpy\",\"engine\":"
            "\"slack\",\"status\":\"ok\",\"tier\":\"slack\",\"degraded\":"
            "false,\"ii\":2,\"mii\":2,\"res_mii\":2,\"rec_mii\":1,"
            "\"length\":20,\"maxlive\":19}");
}

TEST(Protocol, GoldenOkLineExactEngine) {
  EXPECT_EQ(respond("{\"kernel\": \"daxpy\", \"engine\": \"bnb\"}", 2),
            "{\"index\":2,\"proto\":1,\"name\":\"daxpy\",\"engine\":\"bnb\","
            "\"status\":\"ok\",\"tier\":\"exact\",\"degraded\":false,"
            "\"exact_status\":\"optimal\",\"ii\":2,\"mii\":2,\"res_mii\":2,"
            "\"rec_mii\":1,\"length\":19,\"maxlive\":28,\"maxlive_proven\":"
            "false,\"maxlive_cert\":\"none\"}");
}

TEST(Protocol, GoldenOkLineWithIdAndTimes) {
  EXPECT_EQ(respond("{\"source\": \"loop i = 2, n\\n  x[i] = x[i-1] + "
                    "u[i]\\nend\", \"emit_times\": true, \"id\": \"g1\"}",
                    4),
            "{\"index\":4,\"proto\":1,\"id\":\"g1\",\"name\":\"inline\","
            "\"engine\":\"slack\",\"status\":\"ok\",\"tier\":\"slack\","
            "\"degraded\":false,\"ii\":1,\"mii\":1,\"res_mii\":1,"
            "\"rec_mii\":1,\"length\":16,\"maxlive\":16,"
            "\"times\":[0,16,0,1,14,14,15,0]}");
}

TEST(Protocol, GoldenErrorLines) {
  EXPECT_EQ(respond("{oops"),
            "{\"index\":0,\"proto\":1,\"name\":\"invalid\",\"engine\":"
            "\"slack\",\"status\":\"error\",\"error_code\":\"bad_request\","
            "\"error\":\"bad request: expected '\\\"'\"}");
  EXPECT_EQ(respond("{\"kernel\": \"no_such_kernel\"}", 1),
            "{\"index\":1,\"proto\":1,\"name\":\"no_such_kernel\","
            "\"engine\":\"slack\",\"status\":\"error\",\"error_code\":"
            "\"unknown_kernel\",\"error\":\"unknown kernel "
            "'no_such_kernel'\"}");
}

TEST(Protocol, GoldenShedControlAndSleepLines) {
  EXPECT_EQ(renderShedLine(7, "abc"),
            "{\"index\":7,\"proto\":1,\"id\":\"abc\",\"name\":\"shed\","
            "\"status\":\"shed\",\"tier\":\"shed\",\"error_code\":"
            "\"overloaded\",\"error\":\"server overloaded: admission queue "
            "full and no cached answer\"}");
  EXPECT_EQ(renderShedLine(0, ""),
            "{\"index\":0,\"proto\":1,\"name\":\"shed\",\"status\":\"shed\","
            "\"tier\":\"shed\",\"error_code\":\"overloaded\",\"error\":"
            "\"server overloaded: admission queue full and no cached "
            "answer\"}");
  EXPECT_EQ(renderControlErrorLine(5, ServiceErrorCode::UnknownCommand,
                                   "unknown cmd 'frobnicate'"),
            "{\"index\":5,\"proto\":1,\"name\":\"control\",\"status\":"
            "\"error\",\"error_code\":\"unknown_command\",\"error\":"
            "\"unknown cmd 'frobnicate'\"}");
  EXPECT_EQ(renderSleepLine(1, 400),
            "{\"index\":1,\"proto\":1,\"name\":\"control\",\"status\":"
            "\"ok\",\"slept_ms\":400}");
  EXPECT_EQ(renderRequestLine("loop i = 1, n\nend", "bnb"),
            "{\"source\":\"loop i = 1, n\\nend\",\"engine\":\"bnb\"}");
}

TEST(Protocol, EnumWireSpellingsRoundTrip) {
  const ServiceEngine Engines[] = {ServiceEngine::Slack,
                                   ServiceEngine::BranchAndBound,
                                   ServiceEngine::Sat,
                                   ServiceEngine::Portfolio};
  for (const ServiceEngine E : Engines) {
    ServiceEngine Back;
    ASSERT_TRUE(parseServiceEngine(serviceEngineName(E), Back));
    EXPECT_EQ(Back, E);
  }
  EXPECT_STREQ(serviceEngineName(ServiceEngine::BranchAndBound), "bnb");
  ServiceEngine Ignored;
  EXPECT_FALSE(parseServiceEngine("exact", Ignored));

  EXPECT_STREQ(serviceTierName(ServiceTier::Exact), "exact");
  EXPECT_STREQ(serviceTierName(ServiceTier::Slack), "slack");
  EXPECT_STREQ(serviceTierName(ServiceTier::Cached), "cached");
  EXPECT_STREQ(serviceTierName(ServiceTier::Shed), "shed");

  EXPECT_STREQ(serviceErrorCodeName(ServiceErrorCode::BadRequest),
               "bad_request");
  EXPECT_STREQ(serviceErrorCodeName(ServiceErrorCode::UnknownKernel),
               "unknown_kernel");
  EXPECT_STREQ(serviceErrorCodeName(ServiceErrorCode::CompileError),
               "compile_error");
  EXPECT_STREQ(serviceErrorCodeName(ServiceErrorCode::NoSchedule),
               "no_schedule");
  EXPECT_STREQ(serviceErrorCodeName(ServiceErrorCode::MaxIIExceeded),
               "max_ii_exceeded");
  EXPECT_STREQ(serviceErrorCodeName(ServiceErrorCode::Internal), "internal");
  EXPECT_STREQ(serviceErrorCodeName(ServiceErrorCode::Overloaded),
               "overloaded");
  EXPECT_STREQ(serviceErrorCodeName(ServiceErrorCode::UnknownCommand),
               "unknown_command");
}

TEST(Protocol, ShedIdEchoParsesOnlyStringIds) {
  EXPECT_EQ(requestIdForShed("{\"kernel\": \"daxpy\", \"id\": \"q7\"}"),
            "q7");
  EXPECT_EQ(requestIdForShed("{\"kernel\": \"daxpy\", \"id\": 7}"), "");
  EXPECT_EQ(requestIdForShed("{\"kernel\": \"daxpy\"}"), "");
  EXPECT_EQ(requestIdForShed("not json"), "");
}

TEST(Protocol, ClassifierSeesStatusAndTier) {
  const WireResponseView Ok = classifyResponseLine(
      respond("{\"kernel\": \"daxpy\", \"engine\": \"bnb\"}"));
  EXPECT_TRUE(Ok.Ok);
  EXPECT_FALSE(Ok.Error);
  EXPECT_FALSE(Ok.Shed);
  ASSERT_TRUE(Ok.HasTier);
  EXPECT_EQ(Ok.Tier, ServiceTier::Exact);

  const WireResponseView Err = classifyResponseLine(respond("{oops"));
  EXPECT_TRUE(Err.Error);
  EXPECT_FALSE(Err.Ok);
  EXPECT_FALSE(Err.HasTier);

  const WireResponseView Shed = classifyResponseLine(renderShedLine(0, ""));
  EXPECT_TRUE(Shed.Shed);
  EXPECT_FALSE(Shed.Ok);
  ASSERT_TRUE(Shed.HasTier);
  EXPECT_EQ(Shed.Tier, ServiceTier::Shed);
}

TEST(Protocol, PipeMatchesRenderedLines) {
  // The pipe and the renderer are the same code path; pin that the pipe
  // emits exactly renderResponseLine(...) + "\n" per request.
  ServiceConfig SC;
  SC.Jobs = 1;
  SchedulingService Svc(SC);
  std::istringstream In("{\"kernel\": \"daxpy\"}\n{oops\n");
  std::ostringstream Out;
  Svc.processJsonl(In, Out);
  std::ostringstream Want;
  Want << respond("{\"kernel\": \"daxpy\"}", 0) << "\n"
       << respond("{oops", 1) << "\n";
  EXPECT_EQ(Out.str(), Want.str());
}
