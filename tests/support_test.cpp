//===----------------------------------------------------------------------===//
/// \file Unit tests for the support utilities.
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace lsms;

TEST(Statistics, EmptySampleIsAllZero) {
  const QuantileSummary S = summarize(std::vector<double>{});
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Min, 0);
  EXPECT_EQ(S.Max, 0);
}

TEST(Statistics, SingleSample) {
  const QuantileSummary S = summarize(std::vector<double>{7});
  EXPECT_EQ(S.Min, 7);
  EXPECT_EQ(S.Median, 7);
  EXPECT_EQ(S.Pct90, 7);
  EXPECT_EQ(S.Max, 7);
  EXPECT_EQ(S.Mean, 7);
}

TEST(Statistics, QuantilesUseNearestRank) {
  std::vector<double> V;
  for (int I = 1; I <= 10; ++I)
    V.push_back(I);
  const QuantileSummary S = summarize(V);
  EXPECT_EQ(S.Min, 1);
  EXPECT_EQ(S.Median, 5);
  EXPECT_EQ(S.Pct90, 9);
  EXPECT_EQ(S.Max, 10);
  EXPECT_DOUBLE_EQ(S.Mean, 5.5);
}

TEST(Statistics, IntegerOverloadMatchesDouble) {
  const std::vector<int64_t> V = {3, 1, 2};
  const QuantileSummary S = summarize(V);
  EXPECT_EQ(S.Min, 1);
  EXPECT_EQ(S.Median, 2);
  EXPECT_EQ(S.Max, 3);
}

TEST(Statistics, FormatNumberTrimsZeros) {
  EXPECT_EQ(formatNumber(3.0), "3");
  EXPECT_EQ(formatNumber(2.50), "2.5");
  EXPECT_EQ(formatNumber(0.04), "0.04");
  EXPECT_EQ(formatNumber(-1.20), "-1.2");
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 16; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    const int64_t V = R.nextInRange(-3, 4);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 4);
    Seen.insert(V);
  }
  // All 8 values should appear in 1000 draws.
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    const double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Histogram, CountsAndOverflow) {
  Histogram H(10, 50);
  H.add(0);
  H.add(9);
  H.add(10);
  H.add(49);
  H.add(500); // overflow bucket
  EXPECT_EQ(H.count(), 5u);
  EXPECT_DOUBLE_EQ(H.fractionAtOrBelow(9), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(H.fractionAtOrBelow(49), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(H.fractionAtOrBelow(1000), 1.0);
}

TEST(Histogram, NegativeSamplesClampToZero) {
  Histogram H(1, 4);
  H.add(-5);
  EXPECT_DOUBLE_EQ(H.fractionAtOrBelow(0), 1.0);
}

TEST(Histogram, PrintsBucketRows) {
  Histogram H(16, 64);
  for (int I = 0; I < 32; ++I)
    H.add(I);
  std::ostringstream OS;
  H.print(OS, "registers");
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("registers"), std::string::npos);
  EXPECT_NE(Out.find("[0,16)"), std::string::npos);
  EXPECT_NE(Out.find("50"), std::string::npos);
}

TEST(Table, AlignsAndUnderlinesHeader) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "23"});
  std::ostringstream OS;
  T.print(OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
}

TEST(Table, SeparatorRow) {
  TextTable T;
  T.setHeader({"a"});
  T.addRow({"x"});
  T.addSeparator();
  T.addRow({"y"});
  std::ostringstream OS;
  T.print(OS);
  // Two separator lines: one under the header, one explicit.
  const std::string Out = OS.str();
  size_t Count = 0, Pos = 0;
  while ((Pos = Out.find("-\n", Pos)) != std::string::npos) {
    ++Count;
    Pos += 2;
  }
  EXPECT_EQ(Count, 2u);
}
