//===----------------------------------------------------------------------===//
/// \file Randomized property harness for exact MaxLive certification over
/// issue-time families. The family of a loop at a feasible II is every
/// dependence- and resource-feasible schedule whose real operations issue
/// inside their static [Estart, Lstart] windows (canonical makespan); both
/// exact engines claim their certified MaxLive is minimal over exactly
/// that space, so the harness holds them to the properties that claim
/// implies: the family minimum never exceeds a canonical earliest-times
/// schedule's pressure, certified values never drop below the MinAvg
/// bound, the two engines' certified values and certificate kinds agree,
/// and every witness schedule is validator-clean. Suite kernels plus 200
/// seeded random loops.
//===----------------------------------------------------------------------===//

#include "bounds/Bounds.h"
#include "bounds/Lifetimes.h"
#include "core/Validate.h"
#include "exact/ExactEngine.h"
#include "workloads/Kernels.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

/// Reduced budgets keep the 200-loop sweep inside test-tier runtime. A
/// budgeted run degrades to "no certificate" (which the harness skips),
/// never to a wrong one, so tightening budgets cannot hide a violation.
ExactOptions testOptions(ExactEngineKind Engine) {
  ExactOptions O;
  O.Engine = Engine;
  O.NodeBudget = 1L << 14;
  O.SatConflictBudget = 1L << 14;
  O.MaxLiveNodeBudget = 1L << 14;
  O.MaxLiveConflictBudget = 1L << 14;
  return O;
}

void expectValidatorClean(const DepGraph &Graph, int II,
                          const std::vector<int> &Times, const char *What) {
  Schedule S;
  S.Success = true;
  S.II = II;
  S.Times = Times;
  EXPECT_EQ(validateSchedule(Graph, S), "")
      << Graph.body().Name << " II=" << II << " (" << What << ")";
}

/// Checks every family property one loop exposes. Returns true when both
/// engines certified (so callers can assert coverage over a sweep).
bool checkFamilyProperties(const LoopBody &Body) {
  const DepGraph Graph(Body, machine());

  // Canonical reference: the exact feasibility schedule with no pressure
  // pass — a canonical earliest-times leaf of the residue search.
  const ExactResult Canonical =
      scheduleLoopExact(Graph, testOptions(ExactEngineKind::BranchAndBound));
  if (!Canonical.Sched.Success)
    return false; // infeasible under the cap, or budgeted out
  const int II = Canonical.Sched.II;
  const long CanonicalMaxLive = Canonical.MaxLive;
  expectValidatorClean(Graph, II, Canonical.Sched.Times, "canonical");

  const MaxLiveOutcome B = minimizeMaxLiveAtII(
      Graph, II, testOptions(ExactEngineKind::BranchAndBound));
  const MaxLiveOutcome S =
      minimizeMaxLiveAtII(Graph, II, testOptions(ExactEngineKind::Sat));

  for (const MaxLiveOutcome *O : {&B, &S}) {
    if (O->Times.empty())
      continue;
    expectValidatorClean(Graph, II, O->Times,
                         O == &B ? "bnb witness" : "sat witness");
    // No schedule at this II beats the paper's schedule-independent
    // bound, certified or not.
    EXPECT_GE(O->MaxLive, O->MinAvg) << Body.Name << " II=" << II;
    // A MinAvg certificate is exactly the claim of meeting the bound.
    if (O->Certificate == MaxLiveCertificate::MinAvgMet) {
      EXPECT_EQ(O->MaxLive, O->MinAvg) << Body.Name << " II=" << II;
    }
  }

  // Family minimization is seeded with the canonical schedule, so its
  // best-found pressure can only improve on it.
  if (!B.Times.empty()) {
    EXPECT_LE(B.MaxLive, CanonicalMaxLive) << Body.Name << " II=" << II;
  }

  // Both engines' proofs must be mutually consistent: same-kind
  // certificates name the same minimum; a MinAvg-met global value (which
  // may come from outside the family) sits at or below a certified
  // family minimum.
  EXPECT_TRUE(certifiedMaxLiveConsistent(B.MaxLive, B.Certificate,
                                         S.MaxLive, S.Certificate))
      << Body.Name << " II=" << II << ": bnb " << B.MaxLive << " ("
      << maxLiveCertificateName(B.Certificate) << ") vs sat " << S.MaxLive
      << " (" << maxLiveCertificateName(S.Certificate) << ")";
  if (maxLiveCertificatesAgree(B.Certificate, S.Certificate) &&
      B.Certificate != MaxLiveCertificate::None) {
    EXPECT_EQ(B.MaxLive, S.MaxLive)
        << Body.Name << " II=" << II << ": bnb "
        << maxLiveCertificateName(B.Certificate) << " vs sat "
        << maxLiveCertificateName(S.Certificate);
  }
  return B.Certificate != MaxLiveCertificate::None &&
         S.Certificate != MaxLiveCertificate::None;
}

} // namespace

TEST(IssueWindows, PseudoOpsPinTheWindowFrame) {
  // Start is pinned at cycle 0 and Stop at the canonical makespan Cap;
  // every real operation's window sits inside [0, Cap].
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, machine());
    const MIIBounds Bounds = computeMII(Graph);
    MinDistMatrix MinDist;
    ASSERT_TRUE(MinDist.compute(Graph, Bounds.MII)) << Body.Name;
    const IssueWindows W = computeIssueWindows(Body, MinDist);
    const int Start = Body.startOp(), Stop = Body.stopOp();
    EXPECT_EQ(W.Estart[static_cast<size_t>(Start)], 0) << Body.Name;
    EXPECT_EQ(W.Lstart[static_cast<size_t>(Start)], 0) << Body.Name;
    EXPECT_EQ(W.Estart[static_cast<size_t>(Stop)], W.Cap) << Body.Name;
    EXPECT_EQ(W.Lstart[static_cast<size_t>(Stop)], W.Cap) << Body.Name;
    for (int X = 0; X < Body.numOps(); ++X) {
      EXPECT_GE(W.Estart[static_cast<size_t>(X)], 0) << Body.Name;
      EXPECT_LE(W.Lstart[static_cast<size_t>(X)], W.Cap) << Body.Name;
      EXPECT_LE(W.Estart[static_cast<size_t>(X)],
                W.Lstart[static_cast<size_t>(X)])
          << Body.Name << " op " << X << ": empty window at a feasible II";
    }
  }
}

TEST(IssueWindows, CertifiedScheduleStaysInsideItsWindows) {
  // A family certificate is only meaningful if the witness actually lies
  // in the family: every real op inside its window at the certified II.
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, machine());
    const MaxLiveOutcome B = minimizeMaxLiveAtII(
        Graph, computeMII(Graph).MII,
        testOptions(ExactEngineKind::BranchAndBound));
    if (B.Certificate == MaxLiveCertificate::None || B.Times.empty())
      continue;
    MinDistMatrix MinDist;
    ASSERT_TRUE(MinDist.compute(Graph, computeMII(Graph).MII));
    const IssueWindows W = computeIssueWindows(Body, MinDist);
    for (int X = 0; X < Body.numOps(); ++X) {
      if (machine().unitFor(Body.op(X).Opc) == FuKind::None)
        continue;
      EXPECT_GE(B.Times[static_cast<size_t>(X)],
                W.Estart[static_cast<size_t>(X)])
          << Body.Name << " op " << X;
      EXPECT_LE(B.Times[static_cast<size_t>(X)],
                W.Lstart[static_cast<size_t>(X)])
          << Body.Name << " op " << X;
    }
  }
}

TEST(MaxLiveFamily, KernelSuiteProperties) {
  int Certified = 0;
  for (const LoopBody &Body : buildKernelSuite())
    Certified += checkFamilyProperties(Body) ? 1 : 0;
  // The kernels are small; the harness must actually exercise the
  // certified path on them, not skip everything.
  EXPECT_GT(Certified, 0);
}

TEST(MaxLiveFamily, TwoHundredRandomLoopsProperties) {
  const std::vector<LoopBody> Suite =
      buildOracleSuite(/*Count=*/200, /*MinOps=*/3, /*MaxOps=*/14,
                       /*Seed=*/0xFA311E5, /*Jobs=*/1);
  ASSERT_EQ(Suite.size(), 200u);
  int Certified = 0;
  for (const LoopBody &Body : Suite)
    Certified += checkFamilyProperties(Body) ? 1 : 0;
  // Coverage floor: a majority of the sweep must reach double
  // certification, or the harness is silently skipping its own subject.
  EXPECT_GE(Certified, 50) << "only " << Certified
                           << "/200 loops were certified by both engines";
}

TEST(MaxLiveFamily, CertificateNamesRoundTrip) {
  EXPECT_STREQ(maxLiveCertificateName(MaxLiveCertificate::None), "none");
  EXPECT_STREQ(maxLiveCertificateName(MaxLiveCertificate::MinAvgMet),
               "minavg");
  EXPECT_STREQ(maxLiveCertificateName(MaxLiveCertificate::BnBExhausted),
               "bnb-exhausted");
  EXPECT_STREQ(maxLiveCertificateName(MaxLiveCertificate::SatUnsatBelow),
               "sat-unsat-below");
}

TEST(MaxLiveFamily, CertificateAgreementIsEngineBlind) {
  using C = MaxLiveCertificate;
  EXPECT_TRUE(maxLiveCertificatesAgree(C::MinAvgMet, C::MinAvgMet));
  EXPECT_TRUE(maxLiveCertificatesAgree(C::BnBExhausted, C::SatUnsatBelow));
  EXPECT_TRUE(maxLiveCertificatesAgree(C::SatUnsatBelow, C::BnBExhausted));
  EXPECT_TRUE(maxLiveCertificatesAgree(C::None, C::None));
  EXPECT_FALSE(maxLiveCertificatesAgree(C::MinAvgMet, C::BnBExhausted));
  EXPECT_FALSE(maxLiveCertificatesAgree(C::None, C::SatUnsatBelow));
}

TEST(MaxLiveFamily, DeterministicAcrossRuns) {
  // The certification path feeds golden reports, so it must be a pure
  // function of the loop: same outcome, witness, and effort both times.
  const LoopBody Body = buildSampleLoop();
  const DepGraph Graph(Body, machine());
  const int II = computeMII(Graph).MII;
  for (const ExactEngineKind Engine :
       {ExactEngineKind::BranchAndBound, ExactEngineKind::Sat}) {
    const MaxLiveOutcome A = minimizeMaxLiveAtII(Graph, II,
                                                 testOptions(Engine));
    const MaxLiveOutcome B = minimizeMaxLiveAtII(Graph, II,
                                                 testOptions(Engine));
    EXPECT_EQ(A.Status, B.Status);
    EXPECT_EQ(A.MaxLive, B.MaxLive);
    EXPECT_EQ(A.Certificate, B.Certificate);
    EXPECT_EQ(A.Times, B.Times);
    EXPECT_EQ(A.Stats.primary(Engine), B.Stats.primary(Engine));
  }
}
