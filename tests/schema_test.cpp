//===----------------------------------------------------------------------===//
/// \file Tests for the prologue/kernel/epilogue code schema (Rau et al.
/// [19]): the schema plan's shape, its code-expansion accounting, and
/// execution equivalence with both the kernel-only predicated form and
/// the sequential reference.
//===----------------------------------------------------------------------===//

#include "codegen/KernelCodeGen.h"
#include "ir/IRBuilder.h"
#include "codegen/Schema.h"
#include "core/ModuloScheduler.h"
#include "vliwsim/MachineSim.h"
#include "workloads/Kernels.h"
#include "workloads/RandomLoop.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

void checkSchemaEquivalence(const LoopBody &Body, long Iterations) {
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success) << Body.Name;
  KernelCode Code;
  ASSERT_EQ(generateKernelCode(Body, Sched, Code), "") << Body.Name;
  ASSERT_GE(Iterations, Code.StageCount)
      << "schema requires trip count >= stage count";

  const ExecutionResult Ref = runReference(Body, Iterations);
  ExecutionResult Schema = runSchemaCode(Body, Code, Iterations);
  ASSERT_EQ(Schema.Error, "") << Body.Name;
  ExecutionResult RefAligned = Ref;
  for (auto It = RefAligned.LiveOuts.begin();
       It != RefAligned.LiveOuts.end();)
    It = Schema.LiveOuts.count(It->first) ? std::next(It)
                                          : RefAligned.LiveOuts.erase(It);
  EXPECT_EQ(compareExecutions(RefAligned, Schema), "") << Body.Name;

  // And the two machine forms agree with each other.
  const ExecutionResult Kernel = runKernelCode(Body, Code, Iterations);
  EXPECT_EQ(compareExecutions(Kernel, Schema), "") << Body.Name;
}

} // namespace

TEST(Schema, PlanShapeDaxpy) {
  const LoopBody Body = buildDaxpyLoop();
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  const SchemaInfo Info = planSchema(Body, Sched);
  ASSERT_TRUE(Info.Success);
  EXPECT_GE(Info.StageCount, 2);
  EXPECT_EQ(Info.KernelOps, Body.numMachineOps());
  // Prologue + epilogue together replicate each op StageCount-1 times.
  EXPECT_EQ(Info.PrologueOps + Info.EpilogueOps,
            static_cast<long>(Info.StageCount - 1) * Info.KernelOps);
  EXPECT_EQ(Info.MinTripCount, Info.StageCount);
}

TEST(Schema, SingleStageLoopNeedsNoProlog) {
  // A loop whose span fits one stage has an empty prologue/epilogue.
  LoopBody Body;
  {
    IRBuilder B(Body);
    const int C = B.constant(1.0);
    const int S = B.declareValue(RegClass::RR, "s");
    B.defineValue(S, Opcode::FloatAdd, {Use{S, 1}, Use{C, 0}});
    B.setSeeds(S, {0.0});
    B.markLiveOut(S);
    B.finish();
  }
  const Schedule Sched = scheduleLoop(Body, machine());
  ASSERT_TRUE(Sched.Success);
  const SchemaInfo Info = planSchema(Body, Sched);
  if (Info.StageCount == 1) {
    EXPECT_EQ(Info.PrologueOps, 0);
    EXPECT_EQ(Info.EpilogueOps, 0);
  }
}

TEST(Schema, FailedScheduleRejected) {
  const LoopBody Body = buildDaxpyLoop();
  Schedule Bad;
  EXPECT_FALSE(planSchema(Body, Bad).Success);
}

TEST(Schema, ExecutionMatchesKernelOnlyAndReference) {
  checkSchemaEquivalence(buildSampleLoop(), 30);
  checkSchemaEquivalence(buildDaxpyLoop(), 30);
  checkSchemaEquivalence(buildDotLoop(), 30);
  checkSchemaEquivalence(buildPredicatedAbsLoop(), 30);
}

TEST(Schema, AllSuiteKernels) {
  for (const LoopBody &Body : buildKernelSuite())
    checkSchemaEquivalence(Body, 40);
}

class SchemaProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchemaProperty, RandomLoopsMatch) {
  RandomLoopConfig Config;
  Config.TargetOps = 24;
  const LoopBody Body =
      generateRandomLoop(static_cast<uint64_t>(GetParam()) + 9900, Config);
  const Schedule Sched = scheduleLoop(Body, machine());
  if (!Sched.Success)
    return;
  checkSchemaEquivalence(Body, 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaProperty, ::testing::Range(1, 26));
