//===----------------------------------------------------------------------===//
/// \file Semantic tests for the DSL front end, checked through the
/// reference interpreter: operator precedence, nested conditionals,
/// load CSE invalidation across stores, scalar chains, and parameters.
//===----------------------------------------------------------------------===//

#include "frontend/LoopCompiler.h"
#include "vliwsim/Execution.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace lsms;

namespace {

LoopBody compileOrDie(const std::string &Src, const std::string &Name) {
  LoopBody Body;
  const std::string Err = compileLoop(Src, Name, Body);
  EXPECT_EQ(Err, "") << Src;
  EXPECT_EQ(Body.verify(), "") << Name;
  return Body;
}

/// Runs the loop with x[i] = i (and every other array = 1) and returns the
/// written cells of the named output array.
std::map<long, double> runWith(const LoopBody &Body, int OutArray, long N) {
  const auto Init = [](int Array, long Index) {
    return Array == 0 ? static_cast<double>(Index) : 1.0;
  };
  const ExecutionResult R = runReference(Body, N, Init);
  EXPECT_EQ(R.Error, "");
  return R.Arrays[static_cast<size_t>(OutArray)];
}

int arrayIdOf(const LoopBody &Body, const std::string &Name) {
  for (size_t I = 0; I < Body.ArrayNames.size(); ++I)
    if (Body.ArrayNames[I] == Name)
      return static_cast<int>(I);
  ADD_FAILURE() << "array " << Name << " not found";
  return -1;
}

} // namespace

TEST(FrontendSemantics, PrecedenceMulBeforeAdd) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  y[i] = x[i] + 2 * 3\nend\n", "prec1");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 3);
  for (long I = 1; I <= 3; ++I)
    EXPECT_DOUBLE_EQ(Y.at(I), I + 6.0);
}

TEST(FrontendSemantics, ParenthesesOverride) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  y[i] = (x[i] + 2) * 3\nend\n", "prec2");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 3);
  for (long I = 1; I <= 3; ++I)
    EXPECT_DOUBLE_EQ(Y.at(I), (I + 2.0) * 3.0);
}

TEST(FrontendSemantics, LeftAssociativeSubtraction) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  y[i] = x[i] - 1 - 2\nend\n", "assoc");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 3);
  for (long I = 1; I <= 3; ++I)
    EXPECT_DOUBLE_EQ(Y.at(I), I - 3.0);
}

TEST(FrontendSemantics, UnaryMinusBindsTightly) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  y[i] = -x[i] * 2\nend\n", "unary");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 3);
  for (long I = 1; I <= 3; ++I)
    EXPECT_DOUBLE_EQ(Y.at(I), -static_cast<double>(I) * 2.0);
}

TEST(FrontendSemantics, NegativeParam) {
  const LoopBody Body = compileOrDie(
      "param a = -2.5\nloop i = 1, n\n  y[i] = a * x[i]\nend\n", "negp");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 2);
  EXPECT_DOUBLE_EQ(Y.at(1), -2.5);
  EXPECT_DOUBLE_EQ(Y.at(2), -5.0);
}

TEST(FrontendSemantics, LoadCseInvalidatedByStore) {
  // The second read of x[i] must observe the store between the reads.
  const LoopBody Body = compileOrDie("loop i = 1, n\n"
                                     "  y[i] = x[i]\n"
                                     "  x[i] = 7\n"
                                     "  z[i] = x[i]\n"
                                     "end\n",
                                     "cseinv");
  const auto Init = [](int Array, long Index) {
    (void)Array;
    return static_cast<double>(Index);
  };
  const ExecutionResult R = runReference(Body, 3, Init);
  ASSERT_EQ(R.Error, "");
  const int Y = arrayIdOf(Body, "y"), Z = arrayIdOf(Body, "z");
  for (long I = 1; I <= 3; ++I) {
    EXPECT_DOUBLE_EQ(R.Arrays[static_cast<size_t>(Y)].at(I), I); // pre-store
    EXPECT_DOUBLE_EQ(R.Arrays[static_cast<size_t>(Z)].at(I), 7); // forwarded
  }
}

TEST(FrontendSemantics, ScalarChainWithinIteration) {
  const LoopBody Body = compileOrDie("loop i = 1, n\n"
                                     "  t = x[i] * 2\n"
                                     "  t = t + 1\n"
                                     "  y[i] = t\n"
                                     "end\n",
                                     "chain");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 3);
  for (long I = 1; I <= 3; ++I)
    EXPECT_DOUBLE_EQ(Y.at(I), 2.0 * I + 1.0);
}

TEST(FrontendSemantics, IfInsideElse) {
  const LoopBody Body = compileOrDie("param lo = 1.5\nparam hi = 2.5\n"
                                     "loop i = 1, n\n"
                                     "  if (x[i] < lo) then\n"
                                     "    y[i] = 0\n"
                                     "  else\n"
                                     "    if (x[i] > hi) then\n"
                                     "      y[i] = 2\n"
                                     "    else\n"
                                     "      y[i] = 1\n"
                                     "    end\n"
                                     "  end\n"
                                     "end\n",
                                     "nested");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 3);
  // x[i] = i: x=1 -> <lo -> 0; x=2 -> middle -> 1; x=3 -> >hi -> 2.
  EXPECT_DOUBLE_EQ(Y.at(1), 0);
  EXPECT_DOUBLE_EQ(Y.at(2), 1);
  EXPECT_DOUBLE_EQ(Y.at(3), 2);
}

TEST(FrontendSemantics, ConditionalScalarKeepsOldValue) {
  const LoopBody Body = compileOrDie("param s = 100\n"
                                     "loop i = 1, n\n"
                                     "  if (x[i] > 2) then\n"
                                     "    s = x[i]\n"
                                     "  end\n"
                                     "  y[i] = s\n"
                                     "end\n",
                                     "condscalar");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 4);
  // x[i] = i: s stays 100 until i=3.
  EXPECT_DOUBLE_EQ(Y.at(1), 100);
  EXPECT_DOUBLE_EQ(Y.at(2), 100);
  EXPECT_DOUBLE_EQ(Y.at(3), 3);
  EXPECT_DOUBLE_EQ(Y.at(4), 4);
}

TEST(FrontendSemantics, SqrtComposes) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  y[i] = sqrt(x[i] * x[i] + 0)\nend\n", "sqrt");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 4);
  for (long I = 1; I <= 4; ++I)
    EXPECT_DOUBLE_EQ(Y.at(I), static_cast<double>(I));
}

TEST(FrontendSemantics, ReadOnlyArrayNeverWritten) {
  const LoopBody Body = compileOrDie(
      "loop i = 1, n\n  y[i] = x[i] + x[i+1]\nend\n", "readonly");
  // Array x exists with no stores; loads only.
  int Loads = 0, Stores = 0;
  for (const Operation &Op : Body.Ops) {
    Loads += Op.Opc == Opcode::Load ? 1 : 0;
    Stores += Op.Opc == Opcode::Store ? 1 : 0;
  }
  EXPECT_EQ(Loads, 2);
  EXPECT_EQ(Stores, 1);
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 3);
  for (long I = 1; I <= 3; ++I)
    EXPECT_DOUBLE_EQ(Y.at(I), I + (I + 1.0));
}

TEST(FrontendSemantics, CrossIterationScalarReadsPreviousFinal) {
  const LoopBody Body = compileOrDie("param s = 10\n"
                                     "loop i = 1, n\n"
                                     "  y[i] = s\n"
                                     "  s = s + 1\n"
                                     "end\n",
                                     "prevfinal");
  const auto Y = runWith(Body, arrayIdOf(Body, "y"), 3);
  // y[i] reads the PREVIOUS iteration's final s.
  EXPECT_DOUBLE_EQ(Y.at(1), 10);
  EXPECT_DOUBLE_EQ(Y.at(2), 11);
  EXPECT_DOUBLE_EQ(Y.at(3), 12);
}
