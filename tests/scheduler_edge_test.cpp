//===----------------------------------------------------------------------===//
/// \file Edge-case and option-sweep tests for the scheduling framework:
/// forced backtracking, tiny ejection budgets, heuristic toggles, and
/// machine-model variations must all still yield valid schedules.
//===----------------------------------------------------------------------===//

#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "ir/IRBuilder.h"
#include "vliwsim/Execution.h"
#include "workloads/Kernels.h"
#include "workloads/RandomLoop.h"

#include <gtest/gtest.h>

using namespace lsms;

namespace {

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

/// A loop engineered to make the scheduler work for its MII: a recurrence
/// whose circuit leaves zero slack plus adder traffic competing for the
/// same cycles.
LoopBody buildTightLoop() {
  LoopBody Body;
  Body.Name = "tight";
  IRBuilder B(Body);
  const int C = B.constant(1.0);
  // Recurrence x -> y -> x over omega 1: latency 2, RecMII 2.
  const int X = B.declareValue(RegClass::RR, "x");
  const int Y = B.emitValue(Opcode::FloatAdd, {Use{X, 1}, Use{C, 0}}, "y");
  B.defineValue(X, Opcode::FloatSub, {Use{Y, 0}, Use{C, 0}});
  B.setSeeds(X, {1.0});
  B.markLiveOut(X);
  // Two more adder ops -> ResMII 4 on the single adder.
  const int U = B.emitValue(Opcode::FloatAdd, {Use{X, 1}, Use{C, 0}}, "u");
  const int V = B.emitValue(Opcode::FloatSub, {Use{U, 0}, Use{Y, 1}}, "v");
  B.markLiveOut(V);
  B.finish();
  return Body;
}

} // namespace

TEST(SchedulerEdge, TightLoopSchedulesValidly) {
  const LoopBody Body = buildTightLoop();
  const DepGraph Graph(Body, machine());
  const Schedule Sched = scheduleLoop(Graph);
  ASSERT_TRUE(Sched.Success);
  EXPECT_EQ(validateSchedule(Graph, Sched), "");
  EXPECT_EQ(Sched.ResMII, 4);
  EXPECT_EQ(Sched.RecMII, 2);
}

TEST(SchedulerEdge, TinyBudgetStillSucceedsViaEscalation) {
  SchedulerOptions Options = SchedulerOptions::slack();
  Options.BudgetRatio = 1; // almost no backtracking allowed per attempt
  for (const LoopBody &Body :
       {buildTightLoop(), buildSampleLoop(), buildDivideLoop()}) {
    const DepGraph Graph(Body, machine());
    const Schedule Sched = scheduleLoop(Graph, Options);
    ASSERT_TRUE(Sched.Success) << Body.Name;
    EXPECT_EQ(validateSchedule(Graph, Sched), "") << Body.Name;
  }
}

TEST(SchedulerEdge, HeuristicTogglesStayValid) {
  for (const bool HalveCritical : {false, true}) {
    for (const bool HalveDivider : {false, true}) {
      for (const bool Dynamic : {false, true}) {
        SchedulerOptions Options = SchedulerOptions::slack();
        Options.HalveCriticalSlack = HalveCritical;
        Options.HalveDividerSlack = HalveDivider;
        Options.DynamicPriority = Dynamic;
        for (const LoopBody &Body :
             {buildSampleLoop(), buildDivideLoop(), buildDotLoop()}) {
          const DepGraph Graph(Body, machine());
          const Schedule Sched = scheduleLoop(Graph, Options);
          ASSERT_TRUE(Sched.Success) << Body.Name;
          EXPECT_EQ(validateSchedule(Graph, Sched), "") << Body.Name;
        }
      }
    }
  }
}

TEST(SchedulerEdge, BacktrackingIsExercisedSomewhere) {
  // Over a pile of random loops, at least some must need step 3 (the
  // paper: 636 of 1,525 loops backtracked).
  long Ejections = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    const LoopBody Body = generateRandomLoop(Seed + 40000);
    const Schedule Sched = scheduleLoop(Body, machine());
    if (Sched.Success)
      Ejections += Sched.Stats.Ejections;
  }
  EXPECT_GT(Ejections, 0);
}

class MachineSweep : public ::testing::TestWithParam<int> {};

TEST_P(MachineSweep, ValidAcrossMachineVariants) {
  MachineModel M = MachineModel::cydra5();
  switch (GetParam() % 5) {
  case 0:
    M.setUnitCount(FuKind::Adder, 2);
    break;
  case 1:
    M.setUnitCount(FuKind::MemoryPort, 1);
    break;
  case 2:
    M.setLatency(Opcode::Load, 3);
    break;
  case 3:
    M.setLatency(Opcode::FloatAdd, 4);
    M.setLatency(Opcode::FloatSub, 4);
    break;
  case 4:
    M.setUnitCount(FuKind::Multiplier, 2);
    M.setLatency(Opcode::FloatMul, 5);
    break;
  }
  const LoopBody Body =
      generateRandomLoop(static_cast<uint64_t>(GetParam()) + 12000);
  const DepGraph Graph(Body, M);
  const Schedule Sched = scheduleLoop(Graph);
  if (!Sched.Success)
    return;
  ASSERT_EQ(validateSchedule(Graph, Sched), "") << Body.Source;
  // Functional equivalence holds on any machine variant.
  const ExecutionResult Ref = runReference(Body, 16);
  const ExecutionResult Pipe = runPipelined(Body, Sched, 16);
  ASSERT_EQ(compareExecutions(Ref, Pipe), "") << Body.Source;
}

INSTANTIATE_TEST_SUITE_P(Variants, MachineSweep, ::testing::Range(0, 25));

TEST(SchedulerEdge, StopIsScheduleLengthUnderAllPolicies) {
  for (const SchedulerOptions &Options :
       {SchedulerOptions::slack(), SchedulerOptions::cydrome(),
        SchedulerOptions::unidirectionalSlack()}) {
    const LoopBody Body = buildDaxpyLoop();
    const Schedule Sched = scheduleLoop(Body, machine(), Options);
    ASSERT_TRUE(Sched.Success);
    int MaxEnd = 0;
    for (const Operation &Op : Body.Ops)
      MaxEnd = std::max(MaxEnd, Sched.Times[static_cast<size_t>(Op.Id)] +
                                    machine().latency(Op.Opc));
    EXPECT_EQ(Sched.length(), MaxEnd);
  }
}

TEST(SchedulerEdge, MinimalLoopBodies) {
  // Smallest interesting bodies: a single store; a single self-recurrent
  // accumulator.
  {
    LoopBody Body;
    IRBuilder B(Body);
    const int Arr = B.newArray();
    const int C = B.constant(2.0);
    const int A = B.addressStream("a", 0);
    B.emitStore(Arr, 0, Use{A, 0}, Use{C, 0}, "st");
    B.finish();
    const Schedule Sched = scheduleLoop(Body, machine());
    ASSERT_TRUE(Sched.Success);
    EXPECT_EQ(Sched.II, Sched.MII);
  }
  {
    LoopBody Body;
    IRBuilder B(Body);
    const int C = B.constant(1.0);
    const int S = B.declareValue(RegClass::RR, "s");
    B.defineValue(S, Opcode::FloatAdd, {Use{S, 1}, Use{C, 0}});
    B.setSeeds(S, {0.0});
    B.markLiveOut(S);
    B.finish();
    const Schedule Sched = scheduleLoop(Body, machine());
    ASSERT_TRUE(Sched.Success);
    EXPECT_EQ(Sched.II, 1);
  }
}
